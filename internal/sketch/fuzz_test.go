package sketch

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeStream deterministically expands fuzz bytes into a weighted stream:
// each 3-byte group becomes (element, weight) with weight in [1, 32].
func decodeStream(data []byte) []WeightedElement {
	var out []WeightedElement
	for i := 0; i+2 < len(data); i += 3 {
		e := uint64(binary.LittleEndian.Uint16(data[i : i+2]))
		w := 1 + float64(data[i+2]%32)
		out = append(out, WeightedElement{Elem: e % 64, Weight: w})
	}
	return out
}

// FuzzMGInvariant checks the Misra–Gries undercount invariant on arbitrary
// streams: 0 ≤ f_e − f̂_e ≤ Deducted ≤ W/(k+1).
func FuzzMGInvariant(f *testing.F) {
	f.Add([]byte{1, 0, 5, 2, 0, 9, 1, 0, 3}, uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 255, 31, 0, 0, 0, 7, 7, 7, 9, 9, 9}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, kb uint8) {
		k := 1 + int(kb%16)
		s := decodeStream(data)
		m := NewMG(k)
		exact := make(map[uint64]float64)
		var w float64
		for _, it := range s {
			m.Update(it.Elem, it.Weight)
			exact[it.Elem] += it.Weight
			w += it.Weight
		}
		if m.Size() > k {
			t.Fatalf("size %d exceeds k=%d", m.Size(), k)
		}
		if m.Deducted() > w/float64(k+1)+1e-9 {
			t.Fatalf("deducted %v exceeds W/(k+1)=%v", m.Deducted(), w/float64(k+1))
		}
		for e, fe := range exact {
			under := fe - m.Estimate(e)
			if under < -1e-9 || under > m.Deducted()+1e-9 {
				t.Fatalf("element %d: undercount %v outside [0, %v]", e, under, m.Deducted())
			}
		}
	})
}

// FuzzSpaceSavingInvariant checks the overcount invariant on arbitrary
// streams: tracked elements satisfy f_e ≤ est ≤ f_e + err_e.
func FuzzSpaceSavingInvariant(f *testing.F) {
	f.Add([]byte{1, 0, 5, 2, 0, 9}, uint8(3))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kb uint8) {
		k := 1 + int(kb%16)
		s := decodeStream(data)
		ss := NewSpaceSaving(k)
		exact := make(map[uint64]float64)
		for _, it := range s {
			ss.Update(it.Elem, it.Weight)
			exact[it.Elem] += it.Weight
		}
		if ss.Size() > k {
			t.Fatalf("size %d exceeds k=%d", ss.Size(), k)
		}
		for e, fe := range exact {
			est := ss.Estimate(e)
			if est == 0 {
				continue
			}
			if est < fe-1e-9 || est > fe+ss.ErrorOf(e)+1e-9 {
				t.Fatalf("element %d: estimate %v outside [f=%v, f+err=%v]", e, est, fe, fe+ss.ErrorOf(e))
			}
		}
	})
}

// FuzzFDGuarantee checks the Frequent Directions deterministic guarantee
// on arbitrary small row streams and probe directions.
func FuzzFDGuarantee(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80}, uint8(2))
	f.Add([]byte{0, 0, 0, 1}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, ellb uint8) {
		const d = 4
		ell := 1 + int(ellb%6)
		fd := NewFD(ell, d)
		var rows [][]float64
		for i := 0; i+d-1 < len(data); i += d {
			row := make([]float64, d)
			nonzero := false
			for j := 0; j < d; j++ {
				row[j] = (float64(data[i+j]) - 127) / 16
				if row[j] != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				continue
			}
			rows = append(rows, row)
			fd.Append(row)
		}
		if len(rows) == 0 {
			return
		}
		var total float64
		for _, r := range rows {
			total += NormSqLocal(r)
		}
		if fd.Deducted() > total/float64(ell+1)+1e-6*(1+total) {
			t.Fatalf("deducted %v exceeds bound %v", fd.Deducted(), total/float64(ell+1))
		}
		// Probe the standard basis directions.
		for j := 0; j < d; j++ {
			x := make([]float64, d)
			x[j] = 1
			var ax float64
			for _, r := range rows {
				ax += r[j] * r[j]
			}
			bx := fd.Quad(x)
			diff := ax - bx
			if diff < -1e-6*(1+total) || diff > fd.Deducted()+1e-6*(1+total) {
				t.Fatalf("direction e%d: ‖Ax‖²−‖Bx‖² = %v outside [0, %v]", j, diff, fd.Deducted())
			}
		}
	})
}

// NormSqLocal avoids importing matrix in the fuzz file.
func NormSqLocal(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// FuzzMGMergeCommutes checks that merging in either order yields identical
// total weight and consistent size bounds.
func FuzzMGMergeCommutes(f *testing.F) {
	f.Add([]byte{1, 0, 5, 2, 0, 9}, []byte{3, 0, 7, 1, 0, 2}, uint8(3))
	f.Fuzz(func(t *testing.T, a, b []byte, kb uint8) {
		k := 1 + int(kb%12)
		sa, sb := decodeStream(a), decodeStream(b)
		m1, m2 := NewMG(k), NewMG(k)
		m3, m4 := NewMG(k), NewMG(k)
		for _, it := range sa {
			m1.Update(it.Elem, it.Weight)
			m3.Update(it.Elem, it.Weight)
		}
		for _, it := range sb {
			m2.Update(it.Elem, it.Weight)
			m4.Update(it.Elem, it.Weight)
		}
		m1.Merge(m2) // A←B
		m4.Merge(m3) // B←A
		if math.Abs(m1.Weight()-m4.Weight()) > 1e-9 {
			t.Fatalf("merge weight differs by order: %v vs %v", m1.Weight(), m4.Weight())
		}
		if m1.Size() > k || m4.Size() > k {
			t.Fatal("merge exceeded capacity")
		}
	})
}
