package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cm := NewCountMin(64, 4, uint64(seed))
		s := randStream(rng, 500, 100, 10)
		for _, it := range s {
			cm.Update(it.Elem, it.Weight)
		}
		exact, _ := s.exact()
		for e, fe := range exact {
			if cm.Estimate(e) < fe-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinEpsBound(t *testing.T) {
	// With width e/ε, average overcount must be ≤ εW with good probability;
	// check a fixed seed deterministic run.
	rng := rand.New(rand.NewSource(5))
	eps := 0.02
	cm := NewCountMinEps(eps, 0.01, 42)
	s := randStream(rng, 5000, 1000, 5)
	for _, it := range s {
		cm.Update(it.Elem, it.Weight)
	}
	exact, w := s.exact()
	violations := 0
	for e, fe := range exact {
		if cm.Estimate(e) > fe+eps*w {
			violations++
		}
	}
	if violations > len(exact)/100 {
		t.Fatalf("%d/%d estimates exceed εW overcount", violations, len(exact))
	}
}

func TestCountMinMerge(t *testing.T) {
	a := NewCountMin(32, 3, 7)
	b := NewCountMin(32, 3, 7)
	a.Update(1, 5)
	b.Update(1, 3)
	b.Update(2, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(1); got < 8 {
		t.Fatalf("merged Estimate(1) = %v want ≥ 8", got)
	}
	if a.Weight() != 10 {
		t.Fatalf("merged Weight = %v want 10", a.Weight())
	}
}

func TestCountMinMergeMismatch(t *testing.T) {
	a := NewCountMin(32, 3, 7)
	b := NewCountMin(64, 3, 7)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error merging mismatched widths")
	}
	c := NewCountMin(32, 3, 8)
	if err := a.Merge(c); err == nil {
		t.Fatal("expected error merging mismatched seeds")
	}
}

func TestCountMinDeterministicSeed(t *testing.T) {
	a := NewCountMin(32, 3, 9)
	b := NewCountMin(32, 3, 9)
	a.Update(123, 4)
	b.Update(123, 4)
	if a.Estimate(123) != b.Estimate(123) {
		t.Fatal("same seed must give identical sketches")
	}
}

func TestCountMinResetAndDims(t *testing.T) {
	cm := NewCountMin(16, 2, 1)
	if cm.Width() != 16 || cm.Depth() != 2 {
		t.Fatal("dims wrong")
	}
	cm.Update(5, 2)
	cm.Reset()
	if cm.Estimate(5) != 0 || cm.Weight() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCountMinValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCountMin(0, 1, 0) },
		func() { NewCountMinEps(0, 0.5, 0) },
		func() { NewCountMinEps(0.5, 1.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid params")
				}
			}()
			fn()
		}()
	}
}

func TestCountMinZeroWeightNoop(t *testing.T) {
	cm := NewCountMin(8, 2, 3)
	cm.Update(1, 0)
	if cm.Weight() != 0 {
		t.Fatal("zero weight should be no-op")
	}
}
