package sketch

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// decodeFDRows deterministically expands fuzz bytes into d-dimensional
// rows with small integer-derived entries (never NaN/Inf). Interleaved
// length bytes drive the batch boundaries, so the fuzzer explores
// arbitrary splits of the same stream.
func decodeFDRows(data []byte, d int) (rows [][]float64, splits []int) {
	i := 0
	for i < len(data) {
		// One length byte, then up to that many rows of d bytes each.
		n := 1 + int(data[i]%7)
		i++
		batch := 0
		for r := 0; r < n && i+d <= len(data); r++ {
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = float64(int8(data[i+j])) / 8
			}
			i += d
			rows = append(rows, row)
			batch++
		}
		splits = append(splits, batch)
	}
	return rows, splits
}

// FuzzFDBlockedEquivalence feeds arbitrary row streams split at arbitrary
// batch boundaries and asserts that AppendRows is exactly equivalent to
// repeated Append — on the final sketch state, on its persisted snapshot
// (through a gob round-trip), and on the trajectory a restored sketch
// follows when ingestion continues.
func FuzzFDBlockedEquivalence(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(3))
	f.Add([]byte{1, 200, 100, 0, 2, 9, 9, 9, 9}, uint8(1), uint8(2))
	f.Add(bytes.Repeat([]byte{5, 250, 17, 130, 4}, 40), uint8(4), uint8(6))
	f.Add([]byte{}, uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, ellB, dB uint8) {
		d := 1 + int(dB%8)
		ell := 1 + int(ellB%12)
		block := 1 + int(ellB/16) // exercises block sizes 1..16 alongside ℓ
		rows, splits := decodeFDRows(data, d)

		rowPath := NewFDBuffered(ell, d, block)
		for _, row := range rows {
			rowPath.Append(row)
		}

		blocked := NewFDBuffered(ell, d, block)
		start := 0
		for _, n := range splits {
			blocked.AppendRows(rows[start : start+n])
			start += n
		}

		want := rowPath.Snapshot()
		got := blocked.Snapshot()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("blocked sketch diverges from row-at-a-time:\nrow:     %+v\nblocked: %+v", want, got)
		}

		// Persisted form: a gob round-trip of the blocked snapshot restores
		// a sketch whose own snapshot matches the row path's bit for bit.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(got); err != nil {
			t.Fatalf("encoding snapshot: %v", err)
		}
		var decoded FDSnapshot
		if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
			t.Fatalf("decoding snapshot: %v", err)
		}
		restored, err := RestoreFD(decoded)
		if err != nil {
			t.Fatalf("restoring snapshot: %v", err)
		}
		if snap := restored.Snapshot(); !reflect.DeepEqual(want, snap) {
			t.Fatalf("restored sketch diverges:\nwant: %+v\ngot:  %+v", want, snap)
		}

		// Continued ingestion after restore stays on the same trajectory.
		rowPath.AppendRows(rows)
		restored.AppendRows(rows)
		if a, b := rowPath.Snapshot(), restored.Snapshot(); !reflect.DeepEqual(a, b) {
			t.Fatalf("post-restore ingestion diverges:\nwant: %+v\ngot:  %+v", a, b)
		}
	})
}
