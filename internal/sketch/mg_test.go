package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// exactCounts replays a stream into an exact frequency map.
type weightedStream []WeightedElement

func (s weightedStream) exact() (map[uint64]float64, float64) {
	f := make(map[uint64]float64)
	var w float64
	for _, it := range s {
		f[it.Elem] += it.Weight
		w += it.Weight
	}
	return f, w
}

func randStream(rng *rand.Rand, n, universe int, beta float64) weightedStream {
	s := make(weightedStream, n)
	for i := range s {
		s[i] = WeightedElement{
			Elem:   uint64(rng.Intn(universe)),
			Weight: 1 + rng.Float64()*(beta-1),
		}
	}
	return s
}

func TestMGExactWhenSmallUniverse(t *testing.T) {
	// With more counters than distinct elements MG is exact.
	rng := rand.New(rand.NewSource(1))
	s := randStream(rng, 1000, 8, 10)
	m := NewMG(16)
	for _, it := range s {
		m.Update(it.Elem, it.Weight)
	}
	f, w := s.exact()
	if !almostEq(m.Weight(), w, 1e-9) {
		t.Fatalf("Weight = %v want %v", m.Weight(), w)
	}
	if m.Deducted() != 0 {
		t.Fatalf("Deducted = %v want 0", m.Deducted())
	}
	for e, want := range f {
		if got := m.Estimate(e); !almostEq(got, want, 1e-9) {
			t.Fatalf("Estimate(%d) = %v want %v", e, got, want)
		}
	}
}

// Property: 0 ≤ f_e − f̂_e ≤ Deducted ≤ W/(k+1), the MG invariant.
func TestMGErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(20)
		s := randStream(rng, 200+rng.Intn(800), 5+rng.Intn(200), 1+rng.Float64()*50)
		m := NewMG(k)
		for _, it := range s {
			m.Update(it.Elem, it.Weight)
		}
		exact, w := s.exact()
		if m.Deducted() > w/float64(k+1)+1e-9 {
			return false
		}
		for e, fe := range exact {
			under := fe - m.Estimate(e)
			if under < -1e-9 || under > m.Deducted()+1e-9 {
				return false
			}
		}
		// Untracked elements must have estimate 0.
		if m.Estimate(1<<60) != 0 {
			return false
		}
		return m.Size() <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMGZeroAndNegativeWeights(t *testing.T) {
	m := NewMG(4)
	m.Update(1, 0)
	if m.Weight() != 0 || m.Size() != 0 {
		t.Fatal("zero-weight update must be a no-op")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	m.Update(1, -1)
}

func TestMGMergePreservesBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(15)
		s1 := randStream(rng, 100+rng.Intn(400), 5+rng.Intn(100), 20)
		s2 := randStream(rng, 100+rng.Intn(400), 5+rng.Intn(100), 20)
		m1, m2 := NewMG(k), NewMG(k)
		for _, it := range s1 {
			m1.Update(it.Elem, it.Weight)
		}
		for _, it := range s2 {
			m2.Update(it.Elem, it.Weight)
		}
		m1.Merge(m2)
		exact, w := append(append(weightedStream{}, s1...), s2...).exact()
		if m1.Size() > k {
			return false
		}
		if !almostEq(m1.Weight(), w, 1e-6) {
			return false
		}
		// Merged deduction stays within the union bound 2W/(k+1).
		if m1.Deducted() > 2*w/float64(k+1)+1e-9 {
			return false
		}
		for e, fe := range exact {
			under := fe - m1.Estimate(e)
			if under < -1e-9 || under > m1.Deducted()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMGHeavyHittersSorted(t *testing.T) {
	m := NewMG(10)
	m.Update(1, 5)
	m.Update(2, 10)
	m.Update(3, 1)
	hh := m.HeavyHitters(4)
	if len(hh) != 2 || hh[0].Elem != 2 || hh[1].Elem != 1 {
		t.Fatalf("HeavyHitters = %v", hh)
	}
}

func TestMGReset(t *testing.T) {
	m := NewMG(4)
	m.Update(7, 3)
	m.Reset()
	if m.Weight() != 0 || m.Size() != 0 || m.Estimate(7) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestMGShrinkRemovesMin(t *testing.T) {
	m := NewMG(2)
	m.Update(1, 5)
	m.Update(2, 3)
	m.Update(3, 1) // overflow: min counter (1) subtracted from all
	if m.Size() > 2 {
		t.Fatalf("size %d exceeds k=2", m.Size())
	}
	if got := m.Estimate(1); got != 4 {
		t.Fatalf("Estimate(1) = %v want 4", got)
	}
	if got := m.Estimate(3); got != 0 {
		t.Fatalf("Estimate(3) = %v want 0", got)
	}
	if m.Deducted() != 1 {
		t.Fatalf("Deducted = %v want 1", m.Deducted())
	}
}

func TestNewMGValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on k=0")
		}
	}()
	NewMG(0)
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
