package sketch

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/matrix"
)

// Property-test harness for the blocked Frequent Directions fast path: over
// random (ℓ, d, n) configurations it checks, for BOTH ingest paths —
// row-at-a-time Append and blocked AppendRows with arbitrary batch splits —
// that the paper's covariance-error and projection-error bounds hold, and
// that the two paths produce sketches with identical Gram spectra and
// identical shrink counts (they are bit-identical by construction; the
// harness pins that down as a contract).

// splitRows cuts rows into random-length batches (possibly empty).
func splitRows(rng *rand.Rand, rows [][]float64) [][][]float64 {
	var out [][][]float64
	for start := 0; start < len(rows); {
		take := rng.Intn(len(rows) - start + 1) // 0 .. remaining
		if take == 0 && rng.Intn(4) > 0 {
			take = 1
		}
		out = append(out, rows[start:start+take])
		start += take
	}
	return out
}

func denseRows(a *matrix.Dense) [][]float64 {
	out := make([][]float64, a.Rows())
	for i := range out {
		out[i] = a.Row(i)
	}
	return out
}

func TestFDBlockedPropertyHarness(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(12)
		ell := 1 + rng.Intn(d+3) // covers both sketch (ℓ<d) and exact (ℓ≥d) regimes
		n := 1 + rng.Intn(300)
		a := randRows(rng, n, d)
		rows := denseRows(a)

		rowPath := NewFD(ell, d)
		for _, row := range rows {
			rowPath.Append(row)
		}
		blocked := NewFD(ell, d)
		for _, batch := range splitRows(rng, rows) {
			blocked.AppendRows(batch)
		}
		rowPath.Flush()
		blocked.Flush()

		// Identical shrink counts: the two paths share one compression
		// schedule.
		if rowPath.Shrinks() != blocked.Shrinks() {
			t.Fatalf("trial %d (ℓ=%d d=%d n=%d): shrinks %d (row) vs %d (blocked)",
				trial, ell, d, n, rowPath.Shrinks(), blocked.Shrinks())
		}
		if rowPath.Deducted() != blocked.Deducted() {
			t.Fatalf("trial %d: deducted %v vs %v", trial, rowPath.Deducted(), blocked.Deducted())
		}

		// Identical Gram spectra within 1e-9 (relative to the stream mass).
		scale := 1 + a.FrobeniusSq()
		sr := spectrumOf(t, rowPath)
		sb := spectrumOf(t, blocked)
		if len(sr) != len(sb) {
			t.Fatalf("trial %d: spectrum sizes %d vs %d", trial, len(sr), len(sb))
		}
		for i := range sr {
			if math.Abs(sr[i]-sb[i]) > 1e-9*scale {
				t.Fatalf("trial %d: spectra diverge at %d: %v vs %v", trial, i, sr[i], sb[i])
			}
		}

		for name, fd := range map[string]*FD{"row": rowPath, "blocked": blocked} {
			checkCovarianceBound(t, trial, name, a, fd)
			checkProjectionBound(t, trial, name, a, fd)
		}
	}
}

// spectrumOf returns the descending eigenvalues of the sketch's Gram.
func spectrumOf(t *testing.T, fd *FD) []float64 {
	t.Helper()
	vals, _, err := matrix.EigSym(fd.Gram())
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// checkCovarianceBound asserts the paper's covariance guarantee:
// ‖AᵀA − BᵀB‖₂ ≤ Deducted ≤ ‖A‖²_F/(ℓ+1).
func checkCovarianceBound(t *testing.T, trial int, path string, a *matrix.Dense, fd *FD) {
	t.Helper()
	totF := a.FrobeniusSq()
	tol := 1e-7 * (1 + totF)
	if fd.Deducted() > totF/float64(fd.Ell()+1)+tol {
		t.Fatalf("trial %d (%s): deducted %v exceeds ‖A‖²_F/(ℓ+1) = %v",
			trial, path, fd.Deducted(), totF/float64(fd.Ell()+1))
	}
	diff := matrix.Gram(a)
	diff.SubSym(fd.Gram())
	norm, err := matrix.SpectralNormSym(diff)
	if err != nil {
		t.Fatal(err)
	}
	if norm > fd.Deducted()+tol {
		t.Fatalf("trial %d (%s): ‖AᵀA−BᵀB‖₂ = %v exceeds Deducted = %v",
			trial, path, norm, fd.Deducted())
	}
}

// checkProjectionBound asserts the FD projection guarantee: projecting A
// onto the top-k directions of the sketch loses at most the optimal rank-k
// residual plus k·Deducted:
//
//	‖A − π_{B,k}(A)‖²_F ≤ ‖A − A_k‖²_F + k·Deducted.
func checkProjectionBound(t *testing.T, trial int, path string, a *matrix.Dense, fd *FD) {
	t.Helper()
	vals, vecs := fd.factors()
	exactVals, _, err := matrix.EigSym(matrix.Gram(a))
	if err != nil {
		t.Fatal(err)
	}
	totF := a.FrobeniusSq()
	tol := 1e-7 * (1 + totF)
	for _, k := range []int{1, 2} {
		if k > len(vals) || k >= fd.Ell()+1 {
			continue
		}
		// ‖A − π_{B,k}(A)‖²_F = ‖A‖²_F − ‖A·V_k‖²_F.
		var captured float64
		for i := 0; i < a.Rows(); i++ {
			for c := 0; c < k; c++ {
				dot := matrix.Dot(a.Row(i), vecs.Col(c))
				captured += dot * dot
			}
		}
		projErr := totF - captured
		// ‖A − A_k‖²_F = Σ_{i>k} λ_i(AᵀA).
		var optErr float64
		for i := k; i < len(exactVals); i++ {
			if exactVals[i] > 0 {
				optErr += exactVals[i]
			}
		}
		if projErr > optErr+float64(k)*fd.Deducted()+tol {
			t.Fatalf("trial %d (%s, k=%d): projection error %v exceeds ‖A−A_k‖²_F + k·Δ = %v",
				trial, path, k, projErr, optErr+float64(k)*fd.Deducted())
		}
	}
}

// TestBlockedFDSpeedupGuard is the in-tree benchmark guard for the
// acceptance bar: blocked ingest (default 2ℓ buffer, AppendRows) must beat
// the unblocked row-at-a-time baseline (block 1: one factorization per row
// once the sketch saturates) by at least 3× rows/sec. The measured margin
// is an order of magnitude, so the 3× floor is safe against CI noise; the
// go test -bench suite (BenchmarkFDIngest) reports the exact ratio.
func TestBlockedFDSpeedupGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock guard skipped in -short mode")
	}
	const d, ell, n = 48, 12, 1500
	rng := rand.New(rand.NewSource(9))
	rows := denseRows(randRows(rng, n, d))

	unblocked := NewFDBuffered(ell, d, 1)
	startU := time.Now()
	for _, row := range rows {
		unblocked.Append(row)
	}
	unblockedSec := time.Since(startU).Seconds()

	blocked := NewFD(ell, d)
	startB := time.Now()
	blocked.AppendRows(rows)
	blockedSec := time.Since(startB).Seconds()

	if blockedSec <= 0 {
		return // timer resolution floor: unmeasurably fast is a pass
	}
	ratio := unblockedSec / blockedSec
	t.Logf("unblocked %.1fms, blocked %.1fms: %.1fx", unblockedSec*1e3, blockedSec*1e3, ratio)
	if ratio < 3 {
		t.Fatalf("blocked ingest only %.2fx faster than row-at-a-time, want ≥ 3x", ratio)
	}
}
