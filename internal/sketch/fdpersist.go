package sketch

import (
	"fmt"

	"repro/internal/matrix"
)

// FDSnapshot is a self-contained, gob/json-encodable image of an FD
// sketch. Snapshot/RestoreFD round-trips are bit-exact: every float is
// carried verbatim, so a restored sketch answers every query identically
// and continues ingesting on exactly the same trajectory. The blocked
// equivalence fuzz harness leans on this to compare ingest paths through
// their persisted form.
type FDSnapshot struct {
	Ell   int
	D     int
	Block int
	Exact bool

	// Exact mode: the raw d×d Gram storage.
	Gram []float64

	// Sketch mode: the factored eigenpairs (Vecs is row-major d×len(Vals),
	// the retained eigenvector columns) and the raw buffered rows.
	Vals []float64
	Vecs []float64
	Buf  [][]float64

	Appended int
	Total    float64
	Deducted float64
	Shrinks  int64
}

// Snapshot captures the sketch's complete state.
func (f *FD) Snapshot() FDSnapshot {
	s := FDSnapshot{
		Ell:      f.ell,
		D:        f.d,
		Block:    f.bufCap,
		Exact:    f.exact,
		Appended: f.appended,
		Total:    f.total,
		Deducted: f.deducted,
		Shrinks:  f.shrinks,
	}
	if f.exact {
		s.Gram = f.gram.RawData()
		return s
	}
	keep := len(f.vals)
	s.Vals = append([]float64(nil), f.vals...)
	s.Vecs = make([]float64, f.d*keep)
	for i := 0; i < f.d; i++ {
		for k := 0; k < keep; k++ {
			s.Vecs[i*keep+k] = f.vecs.At(i, k)
		}
	}
	s.Buf = make([][]float64, f.buf.Rows())
	for i := range s.Buf {
		s.Buf[i] = f.buf.RowCopy(i)
	}
	return s
}

// RestoreFD rebuilds a sketch from a snapshot.
func RestoreFD(s FDSnapshot) (*FD, error) {
	if s.Ell < 1 || s.D < 1 || s.Block < 1 {
		return nil, fmt.Errorf("sketch: FD snapshot needs ℓ,d,block ≥ 1, got %d,%d,%d", s.Ell, s.D, s.Block)
	}
	if s.Exact != (s.Ell >= s.D) {
		return nil, fmt.Errorf("sketch: FD snapshot mode %v inconsistent with ℓ=%d d=%d", s.Exact, s.Ell, s.D)
	}
	f := NewFDBuffered(s.Ell, s.D, s.Block)
	f.appended = s.Appended
	f.total = s.Total
	f.deducted = s.Deducted
	f.shrinks = s.Shrinks
	if s.Exact {
		if len(s.Gram) != s.D*s.D {
			return nil, fmt.Errorf("sketch: FD snapshot Gram has %d values, want %d", len(s.Gram), s.D*s.D)
		}
		f.gram = matrix.SymFromRaw(s.D, s.Gram)
		return f, nil
	}
	keep := len(s.Vals)
	if keep > s.D || len(s.Vecs) != s.D*keep {
		return nil, fmt.Errorf("sketch: FD snapshot has %d eigenvalues and %d eigenvector entries for d=%d", keep, len(s.Vecs), s.D)
	}
	f.vals = append(f.vals[:0], s.Vals...)
	for i := 0; i < s.D; i++ {
		for k := 0; k < keep; k++ {
			f.vecs.Set(i, k, s.Vecs[i*keep+k])
		}
	}
	// compress() fires the moment the buffer reaches the block size, so a
	// legitimate snapshot always holds strictly fewer buffered rows; a full
	// buffer would break the Append ≡ AppendRows compression schedule.
	if len(s.Buf) >= s.Block {
		return nil, fmt.Errorf("sketch: FD snapshot buffers %d rows, block is %d", len(s.Buf), s.Block)
	}
	for i, row := range s.Buf {
		if len(row) != s.D {
			return nil, fmt.Errorf("sketch: FD snapshot buffered row %d has length %d, want %d", i, len(row), s.D)
		}
		f.buf.AppendRow(row)
	}
	return f, nil
}
