package sketch

import (
	"fmt"
	"sort"
)

// SpaceSaving is a weighted SpaceSaving summary (Metwally et al., TODS 2006)
// with k counters. Estimates overcount:
//
//	f_e ≤ Estimate(e) ≤ f_e + MaxError()
//
// where MaxError is at most W/k. The paper suggests SpaceSaving as the
// bounded-space summary for the sites in protocols P2 and P4.
type SpaceSaving struct {
	k      int
	counts map[uint64]float64
	errs   map[uint64]float64 // per-element overcount bound
	weight float64
}

// NewSpaceSaving returns a weighted SpaceSaving summary with k ≥ 1 counters.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic(fmt.Sprintf("sketch: SpaceSaving needs k ≥ 1, got %d", k))
	}
	return &SpaceSaving{
		k:      k,
		counts: make(map[uint64]float64, k+1),
		errs:   make(map[uint64]float64, k+1),
	}
}

// K returns the counter capacity.
func (s *SpaceSaving) K() int { return s.k }

// Update processes one weighted element.
func (s *SpaceSaving) Update(e uint64, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("sketch: negative weight %v", w))
	}
	if w == 0 {
		return
	}
	s.weight += w
	if _, ok := s.counts[e]; ok {
		s.counts[e] += w
		return
	}
	if len(s.counts) < s.k {
		s.counts[e] = w
		s.errs[e] = 0
		return
	}
	// Evict the minimum counter: the newcomer inherits its count as error.
	minE, minV := uint64(0), -1.0
	for elem, v := range s.counts {
		if minV < 0 || v < minV || (v == minV && elem < minE) {
			minE, minV = elem, v
		}
	}
	delete(s.counts, minE)
	delete(s.errs, minE)
	s.counts[e] = minV + w
	s.errs[e] = minV
}

// Estimate returns the (over)estimate for element e; 0 if untracked.
func (s *SpaceSaving) Estimate(e uint64) float64 { return s.counts[e] }

// ErrorOf returns the overcount bound recorded for element e.
func (s *SpaceSaving) ErrorOf(e uint64) float64 { return s.errs[e] }

// GuaranteedWeight returns a lower bound on the true weight of e:
// Estimate(e) − ErrorOf(e).
func (s *SpaceSaving) GuaranteedWeight(e uint64) float64 {
	return s.counts[e] - s.errs[e]
}

// Weight returns the total stream weight processed.
func (s *SpaceSaving) Weight() float64 { return s.weight }

// MaxError returns the largest per-element overcount bound, at most W/k.
func (s *SpaceSaving) MaxError() float64 {
	var m float64
	for _, v := range s.errs {
		if v > m {
			m = v
		}
	}
	return m
}

// Size returns the number of live counters.
func (s *SpaceSaving) Size() int { return len(s.counts) }

// HeavyHitters returns elements with estimate ≥ threshold, sorted by
// descending estimate.
func (s *SpaceSaving) HeavyHitters(threshold float64) []WeightedElement {
	var out []WeightedElement
	for e, v := range s.counts {
		if v >= threshold {
			out = append(out, WeightedElement{Elem: e, Weight: v})
		}
	}
	SortByWeightDesc(out)
	return out
}

// Merge folds other into s, keeping the k largest combined counts. The
// overcount bound of the result is at most the sum of the inputs' bounds
// plus the (k+1)-th largest combined count (mergeable-summaries rule).
func (s *SpaceSaving) Merge(other *SpaceSaving) {
	type entry struct {
		e    uint64
		c, r float64
	}
	combined := make(map[uint64]*entry, len(s.counts)+len(other.counts))
	for e, c := range s.counts {
		combined[e] = &entry{e: e, c: c, r: s.errs[e]}
	}
	for e, c := range other.counts {
		if en, ok := combined[e]; ok {
			en.c += c
			en.r += other.errs[e]
		} else {
			combined[e] = &entry{e: e, c: c, r: other.errs[e]}
		}
	}
	all := make([]*entry, 0, len(combined))
	for _, en := range combined {
		all = append(all, en)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].e < all[j].e
	})
	s.counts = make(map[uint64]float64, s.k+1)
	s.errs = make(map[uint64]float64, s.k+1)
	for i, en := range all {
		if i >= s.k {
			break
		}
		s.counts[en.e] = en.c
		s.errs[en.e] = en.r
	}
	s.weight += other.weight
}

// Reset clears the summary.
func (s *SpaceSaving) Reset() {
	s.counts = make(map[uint64]float64, s.k+1)
	s.errs = make(map[uint64]float64, s.k+1)
	s.weight = 0
}
