// Package sketch implements the mergeable stream summaries the distributed
// protocols are built from: the weighted Misra–Gries frequency sketch, the
// weighted SpaceSaving sketch, a Count-Min sketch, and Liberty's Frequent
// Directions matrix sketch (maintained in its exact Gram-eigen form).
//
// All summaries are deterministic except Count-Min. Weights are arbitrary
// nonnegative float64 values; the protocols in this repository use weights in
// [1, β] per the paper's model.
package sketch

import (
	"fmt"
	"sort"
)

// MG is a weighted Misra–Gries summary with k counters. For every element e
// it maintains an estimate f̂_e with the classic one-sided guarantee
//
//	0 ≤ f_e − f̂_e ≤ Deducted() ≤ W/(k+1)
//
// where W is the total weight processed. MG summaries are mergeable
// (Agarwal et al., PODS 2012): merging two summaries and re-pruning to k
// counters keeps the summed error bounds.
type MG struct {
	k        int
	counters map[uint64]float64
	weight   float64 // total weight processed (including merged-in summaries)
	deducted float64 // total weight removed by shrink steps; the error bound
}

// NewMG returns a weighted Misra–Gries summary with k ≥ 1 counters.
func NewMG(k int) *MG {
	if k < 1 {
		panic(fmt.Sprintf("sketch: MG needs k ≥ 1, got %d", k))
	}
	return &MG{k: k, counters: make(map[uint64]float64, k+1)}
}

// K returns the counter capacity.
func (m *MG) K() int { return m.k }

// Update processes one stream element with the given weight. Weights must be
// nonnegative; zero-weight updates are ignored.
func (m *MG) Update(e uint64, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("sketch: negative weight %v", w))
	}
	if w == 0 {
		return
	}
	m.weight += w
	m.counters[e] += w
	if len(m.counters) > m.k {
		m.shrink()
	}
}

// shrink subtracts the minimum counter value from every counter and deletes
// the zeroed entries, restoring the size invariant len ≤ k. At least one
// counter (a minimum) is always removed.
func (m *MG) shrink() {
	minV := -1.0
	for _, v := range m.counters {
		if minV < 0 || v < minV {
			minV = v
		}
	}
	if minV <= 0 {
		minV = 0
	}
	for e, v := range m.counters {
		if v-minV <= 0 {
			delete(m.counters, e)
		} else {
			m.counters[e] = v - minV
		}
	}
	m.deducted += minV
}

// Estimate returns f̂_e, an underestimate of the true weight of element e.
func (m *MG) Estimate(e uint64) float64 { return m.counters[e] }

// Weight returns the total weight processed by this summary (W).
func (m *MG) Weight() float64 { return m.weight }

// Deducted returns the cumulative shrink deduction, which upper-bounds the
// undercount of any element's estimate.
func (m *MG) Deducted() float64 { return m.deducted }

// Size returns the number of live counters.
func (m *MG) Size() int { return len(m.counters) }

// Counters returns a copy of the live counters.
func (m *MG) Counters() map[uint64]float64 {
	out := make(map[uint64]float64, len(m.counters))
	for e, v := range m.counters {
		out[e] = v
	}
	return out
}

// Merge folds other into m without increasing the combined error bound
// beyond the sum of the two inputs' bounds. other is not modified.
func (m *MG) Merge(other *MG) {
	for e, v := range other.counters {
		m.counters[e] += v
	}
	m.weight += other.weight
	m.deducted += other.deducted
	if len(m.counters) > m.k {
		// Prune to k counters by subtracting the (k+1)-th largest value,
		// the mergeable-summaries rule.
		vals := make([]float64, 0, len(m.counters))
		for _, v := range m.counters {
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		cut := vals[m.k]
		for e, v := range m.counters {
			if v-cut <= 0 {
				delete(m.counters, e)
			} else {
				m.counters[e] = v - cut
			}
		}
		m.deducted += cut
	}
}

// Reset clears the summary to its freshly constructed state.
func (m *MG) Reset() {
	m.counters = make(map[uint64]float64, m.k+1)
	m.weight = 0
	m.deducted = 0
}

// HeavyHitters returns the elements whose estimated weight is at least
// threshold, sorted by descending estimate.
func (m *MG) HeavyHitters(threshold float64) []WeightedElement {
	var out []WeightedElement
	for e, v := range m.counters {
		if v >= threshold {
			out = append(out, WeightedElement{Elem: e, Weight: v})
		}
	}
	SortByWeightDesc(out)
	return out
}

// WeightedElement pairs an element label with a weight.
type WeightedElement struct {
	Elem   uint64
	Weight float64
}

// SortByWeightDesc sorts in place by descending weight, breaking ties by
// ascending element id. Every heavy-hitter listing in the repository uses
// this one total order, so equal-estimate outputs are deterministic — in
// particular, a sharded tracker's merged listing matches the unsharded
// tracker's even when shard merges visit elements in a different map order.
func SortByWeightDesc(s []WeightedElement) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Weight != s[j].Weight {
			return s[i].Weight > s[j].Weight
		}
		return s[i].Elem < s[j].Elem
	})
}
