package sketch

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// FD is Liberty's Frequent Directions sketch (SIGKDD 2013), the matrix
// analogue of Misra–Gries: it maintains a sketch B with at most ℓ rows of a
// row-stream matrix A such that, for every unit vector x,
//
//	0 ≤ ‖Ax‖² − ‖Bx‖² ≤ Deducted() ≤ ‖A‖²_F / (ℓ+1)
//
// (the Ghashami–Phillips shrink rule used here subtracts the (ℓ+1)-th
// largest squared singular value whenever the rank exceeds ℓ, which gives
// the 1/(ℓ+1) bound; Liberty's original analysis gives 2/ℓ).
//
// The sketch is stored in its exact factored form: the eigenpairs (vals,
// vecs) of BᵀB, so B = diag(√vals)·vecsᵀ. Incoming rows are buffered and
// folded in with one O(d³) eigendecomposition per block of 2ℓ rows, the
// blocked variant the FD paper (and Section 5.2 of the tracking paper)
// describes: appending is an O(d) copy, the factorization amortizes to
// O(dℓ) work per row, and the decomposition scratch is reused across
// blocks, so the steady-state append path allocates nothing. AppendRows
// ingests whole batches and is exactly equivalent to appending its rows
// one at a time (same buffer, same compression schedule, bit-identical
// state); NewFDBuffered exposes the block size, with block 1 reproducing
// the unblocked one-factorization-per-row baseline the benchmarks compare
// against.
//
// When ℓ ≥ d the sketch can never overflow (rank(B) ≤ d ≤ ℓ), so it runs in
// an exact mode that accumulates the Gram matrix directly with zero error
// and no factorizations; this is the regime protocol P1 enters at small ε.
//
// FD sketches are mergeable: Merge(other) never increases the summed error
// bound (Agarwal et al., PODS 2012).
type FD struct {
	ell int // sketch size: max rows of the materialized B
	d   int // row dimension

	// Exact mode (ℓ ≥ d): the Gram matrix alone carries the sketch.
	exact bool
	gram  *matrix.Sym

	// Sketch mode (ℓ < d): eigenpairs of BᵀB plus a row buffer. vecs is a
	// d×d matrix of which only the first len(vals) columns are meaningful.
	vals []float64
	vecs *matrix.Dense
	buf  *matrix.Dense // raw buffered rows not yet folded in

	bufCap   int
	appended int     // rows appended since Reset (bounds rank)
	total    float64 // ‖A‖²_F of everything processed
	deducted float64 // cumulative shrink deduction: the error witness
	shrinks  int64   // number of shrink deductions applied

	// Reusable per-sketch factorization scratch (lazily allocated).
	scratch *matrix.Sym
	eigWS   *matrix.EigWorkspace
	col     []float64     // eigenvector column staging for reconstructions
	pack    *matrix.Dense // column-major packing for the blocked Gram fold
}

// NewFD returns a Frequent Directions sketch with ℓ rows for d-dimensional
// inputs, using the default 2ℓ-row ingest buffer. ℓ ≥ 1; ℓ ≥ d makes the
// sketch exact (zero covariance error).
func NewFD(ell, d int) *FD {
	block := 2 * ell
	if block < 8 {
		block = 8
	}
	return NewFDBuffered(ell, d, block)
}

// NewFDBuffered returns an FD sketch whose ingest buffer holds block rows:
// one factorize-and-shrink pass runs per block, so larger blocks amortize
// the O(d³) decomposition over more rows at the cost of a block×d row
// buffer. block ≥ 1; block 1 is the unblocked row-at-a-time baseline (one
// factorization per row once the sketch saturates). The block size changes
// the shrink schedule — and therefore the exact sketch values — but never
// the Deducted() ≤ ‖A‖²_F/(ℓ+1) guarantee.
func NewFDBuffered(ell, d, block int) *FD {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("sketch: FD needs ℓ,d ≥ 1, got %d,%d", ell, d))
	}
	if block < 1 {
		panic(fmt.Sprintf("sketch: FD needs block ≥ 1, got %d", block))
	}
	f := &FD{ell: ell, d: d, bufCap: block}
	if ell >= d {
		f.exact = true
		f.gram = matrix.NewSym(d)
		return f
	}
	f.vecs = matrix.NewDense(d, d)
	f.buf = matrix.NewDense(0, d)
	return f
}

// Ell returns the sketch size ℓ.
func (f *FD) Ell() int { return f.ell }

// Dim returns the row dimension d.
func (f *FD) Dim() int { return f.d }

// Block returns the ingest-buffer capacity (rows per factorization).
func (f *FD) Block() int { return f.bufCap }

// Exact reports whether the sketch is running in the zero-error ℓ ≥ d mode.
func (f *FD) Exact() bool { return f.exact }

// Append processes one row of the stream.
//
//distlint:hotpath
func (f *FD) Append(row []float64) {
	if len(row) != f.d {
		panic(fmt.Sprintf("sketch: FD append row of length %d, want %d", len(row), f.d))
	}
	f.total += matrix.NormSq(row)
	f.appended++
	if f.exact {
		f.gram.AddOuter(1, row)
		return
	}
	f.buf.AppendRow(row)
	if f.buf.Rows() >= f.bufCap {
		f.compress()
	}
}

// AppendRows processes a batch of rows: the blocked ingest fast path.
// The result is exactly the sketch that repeated Append calls would
// produce — same buffer, same compression schedule, bit-identical state —
// but the batch loop skips the per-row call and validation overhead.
// Unlike Append, the whole batch is validated up front: a bad row panics
// before any row of the batch is ingested.
//
//distlint:hotpath
func (f *FD) AppendRows(rows [][]float64) {
	for i, row := range rows {
		if len(row) != f.d {
			panic(fmt.Sprintf("sketch: FD append row %d of length %d, want %d", i, len(row), f.d))
		}
	}
	if f.exact {
		for _, row := range rows {
			f.total += matrix.NormSq(row)
			f.gram.AddOuter(1, row)
		}
		f.appended += len(rows)
		return
	}
	for i := 0; i < len(rows); {
		take := f.bufCap - f.buf.Rows()
		if take > len(rows)-i {
			take = len(rows) - i
		}
		for _, row := range rows[i : i+take] {
			f.total += matrix.NormSq(row)
			f.buf.AppendRow(row)
		}
		f.appended += take
		i += take
		if f.buf.Rows() >= f.bufCap {
			f.compress()
		}
	}
}

// compress folds the buffer into the factored sketch and shrinks back to at
// most ℓ retained directions if the combined rank exceeds ℓ. The Gram
// accumulator and eigendecomposition scratch are per-sketch and reused, so
// steady-state compression allocates nothing.
//
//distlint:hotpath
func (f *FD) compress() {
	if f.exact || f.buf.Rows() == 0 {
		return
	}
	if f.scratch == nil {
		f.scratch = matrix.NewSym(f.d)
	}
	matrix.ReconstructIntoWork(f.scratch, f.vecs, f.vals, f.colScratch())
	if f.pack == nil {
		f.pack = matrix.NewDense(0, 0)
	}
	f.scratch.AddDenseBlock(f.buf, f.pack)
	f.buf.Reset()
	f.factorAndShrink(f.scratch)
}

// colScratch returns the reusable length-d staging buffer for eigenvector
// columns.
//
//distlint:hotpath
func (f *FD) colScratch() []float64 {
	if f.col == nil {
		f.col = make([]float64, f.d) //distlint:alloc-ok one-time lazy init, reused ever after
	}
	return f.col
}

// AccumulateGram folds w times the sketch's Gram matrix BᵀB — factored
// directions plus any buffered rows, without flushing — into dst, using only
// per-sketch scratch: the allocation- and factorization-free merge the fast
// protocol paths use in place of Gram() + AddSym. w = −1 subtracts, which
// the P2 small-space variant uses for its implicit sketch difference.
//
//distlint:hotpath
func (f *FD) AccumulateGram(dst *matrix.Sym, w float64) {
	if f.exact {
		dst.AddScaledSym(w, f.gram)
		return
	}
	col := f.colScratch()
	for k, lam := range f.vals {
		if lam == 0 {
			continue
		}
		for i := 0; i < f.d; i++ {
			col[i] = f.vecs.At(i, k)
		}
		dst.AddOuter(w*lam, col)
	}
	for i := 0; i < f.buf.Rows(); i++ {
		dst.AddOuter(w, f.buf.Row(i))
	}
}

// gramFull returns a freshly allocated Gram matrix of the sketch plus any
// buffered rows.
func (f *FD) gramFull() *matrix.Sym {
	if f.exact {
		return f.gram.Clone()
	}
	g := matrix.Reconstruct(f.vecs, f.vals)
	for i := 0; i < f.buf.Rows(); i++ {
		g.AddOuter(1, f.buf.Row(i))
	}
	return g
}

// Flush folds any buffered rows into the factored form immediately.
func (f *FD) Flush() { f.compress() }

// Gram returns BᵀB for the current sketch (including buffered rows).
func (f *FD) Gram() *matrix.Sym { return f.gramFull() }

// Quad returns ‖Bx‖² for the current sketch (including buffered rows).
func (f *FD) Quad(x []float64) float64 {
	if f.exact {
		return f.gram.Quad(x)
	}
	var q float64
	for k, lam := range f.vals {
		dot := matrix.Dot(f.vecs.Col(k), x)
		q += lam * dot * dot
	}
	for i := 0; i < f.buf.Rows(); i++ {
		dot := matrix.Dot(f.buf.Row(i), x)
		q += dot * dot
	}
	return q
}

// Rows materializes the sketch matrix B: at most ℓ (and at most d) rows,
// the k-th being √vals_k · v_kᵀ. This costs one eigendecomposition in exact
// mode; use RowBound when only the count is needed.
func (f *FD) Rows() *matrix.Dense {
	vals, vecs := f.factors()
	b := matrix.NewDense(0, f.d)
	row := make([]float64, f.d)
	for k, lam := range vals {
		if lam <= 0 {
			break
		}
		s := math.Sqrt(lam)
		for i := 0; i < f.d; i++ {
			row[i] = s * vecs.At(i, k)
		}
		b.AppendRow(row)
	}
	return b
}

// RowBound returns an upper bound on the number of rows Rows() would
// return — min(ℓ, d, rows appended since Reset) — without factorizing.
// Protocol P1 uses it to account message sizes cheaply.
func (f *FD) RowBound() int {
	b := f.ell
	if f.d < b {
		b = f.d
	}
	if f.appended < b {
		b = f.appended
	}
	return b
}

// factors returns the current eigenpairs, factorizing on demand in exact
// mode and flushing the buffer in sketch mode. In exact mode the returned
// slices alias the sketch's reusable workspace and are valid only until
// the next factorization.
func (f *FD) factors() ([]float64, *matrix.Dense) {
	if !f.exact {
		f.compress()
		return f.vals, f.vecs
	}
	vals, vecs := f.eig(f.gram)
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return vals, vecs
}

// TruncatedGram returns BₖᵀBₖ where Bₖ keeps only the top k directions of
// the sketch. Used by the rank-k baselines in the evaluation.
func (f *FD) TruncatedGram(k int) *matrix.Sym {
	vals, vecs := f.factors()
	if k > len(vals) {
		k = len(vals)
	}
	return matrix.Reconstruct(vecs, vals[:k])
}

// Total returns ‖A‖²_F over everything processed.
func (f *FD) Total() float64 { return f.total }

// Deducted returns the cumulative shrink deduction; for any unit x it bounds
// ‖Ax‖² − ‖Bx‖². Zero in exact mode.
func (f *FD) Deducted() float64 { return f.deducted }

// Shrinks returns how many shrink deductions have been applied: the
// equivalence tests use it to prove the blocked and row-at-a-time ingest
// paths follow the same compression schedule. Zero in exact mode.
func (f *FD) Shrinks() int64 { return f.shrinks }

// Size returns the number of retained directions after a flush (sketch
// mode) or the rank bound (exact mode).
func (f *FD) Size() int {
	if f.exact {
		return f.RowBound()
	}
	f.compress()
	return len(f.vals)
}

// Merge folds other into f. Equivalent to appending other's materialized
// rows; the error bounds add. other is not modified.
func (f *FD) Merge(other *FD) {
	if f.d != other.d {
		panic(fmt.Sprintf("sketch: merge FD of dim %d with dim %d", other.d, f.d))
	}
	f.total += other.total
	f.deducted += other.deducted
	f.appended += other.appended
	f.shrinks += other.shrinks
	if f.exact {
		// rank(combined) ≤ d ≤ ℓ: pure Gram addition, still zero error.
		f.gram.AddSym(other.gramFull())
		return
	}
	g := f.gramFull()
	g.AddSym(other.gramFull())
	f.buf.Reset()
	f.factorAndShrink(g)
}

// factorAndShrink replaces the sketch with the factorization of g, applying
// the FD shrink (subtract the (ℓ+1)-th largest eigenvalue) if the rank of g
// exceeds ℓ, and accumulating the deduction into the error witness. g may
// be f.scratch; the eigendecomposition output is copied into the sketch's
// own storage.
func (f *FD) factorAndShrink(g *matrix.Sym) {
	vals, V := f.eig(g)
	// Clamp tiny negative eigenvalues produced by roundoff.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	rank := 0
	for _, v := range vals {
		if v > 0 {
			rank++
		}
	}
	if rank > f.ell && f.ell < len(vals) {
		// Subtract the (ℓ+1)-th largest eigenvalue: the top ℓ directions
		// each lose exactly δ and everything beyond them vanishes, so the
		// result fits in ℓ rows and each shrink removes ≥ (ℓ+1)·δ of trace.
		delta := vals[f.ell]
		f.deducted += delta
		f.shrinks++
		for i := range vals {
			vals[i] -= delta
			if vals[i] < 0 {
				vals[i] = 0
			}
		}
	}
	keep := 0
	for _, v := range vals {
		if v > 0 {
			keep++
		} else {
			break // sorted descending, rest are ≤ 0
		}
	}
	f.vals = append(f.vals[:0], vals[:keep]...)
	f.vecs.CopyFrom(V)
}

// eig decomposes g into the sketch's reusable workspace, falling back to
// the unconditionally convergent Jacobi reference if the fast path fails
// (possible only on NaN/Inf input). The returned slices alias the
// workspace.
func (f *FD) eig(g *matrix.Sym) ([]float64, *matrix.Dense) {
	if f.eigWS == nil {
		f.eigWS = matrix.NewEigWorkspace()
	}
	vals, V, err := matrix.EigSymWork(g, f.eigWS)
	if err != nil {
		vals, V, err = matrix.JacobiEigSym(g)
		if err != nil {
			panic(fmt.Sprintf("sketch: FD factorization: %v", err))
		}
	}
	return vals, V
}

// Reset clears the sketch.
func (f *FD) Reset() {
	if f.exact {
		f.gram.Reset()
	} else {
		f.vals = f.vals[:0]
		f.buf.Reset()
	}
	f.appended = 0
	f.total = 0
	f.deducted = 0
	f.shrinks = 0
}
