package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceSavingExactSmallUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randStream(rng, 500, 6, 10)
	ss := NewSpaceSaving(10)
	for _, it := range s {
		ss.Update(it.Elem, it.Weight)
	}
	exact, w := s.exact()
	if !almostEq(ss.Weight(), w, 1e-9) {
		t.Fatalf("Weight = %v want %v", ss.Weight(), w)
	}
	for e, fe := range exact {
		if !almostEq(ss.Estimate(e), fe, 1e-9) {
			t.Fatalf("Estimate(%d) = %v want %v", e, ss.Estimate(e), fe)
		}
		if ss.ErrorOf(e) != 0 {
			t.Fatalf("ErrorOf(%d) = %v want 0", e, ss.ErrorOf(e))
		}
	}
}

// Property: f_e ≤ Estimate(e) ≤ f_e + MaxError, MaxError ≤ W/k, size ≤ k.
func TestSpaceSavingOvercountBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(20)
		s := randStream(rng, 200+rng.Intn(800), 5+rng.Intn(200), 1+rng.Float64()*30)
		ss := NewSpaceSaving(k)
		for _, it := range s {
			ss.Update(it.Elem, it.Weight)
		}
		exact, w := s.exact()
		if ss.Size() > k {
			return false
		}
		// The classic bound min-counter ≤ W/k; per-entry errors are bounded
		// by the min counter value at eviction time, itself ≤ W/k at the end.
		if ss.MaxError() > w/float64(k)+1e-9 {
			return false
		}
		for e, fe := range exact {
			est := ss.Estimate(e)
			if est == 0 {
				continue // evicted
			}
			if est < fe-1e-9 {
				return false // SpaceSaving never undercounts a tracked item
			}
			if est > fe+ss.ErrorOf(e)+1e-9 {
				return false
			}
			if ss.GuaranteedWeight(e) > fe+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	ss := NewSpaceSaving(2)
	ss.Update(1, 10)
	ss.Update(2, 5)
	ss.Update(3, 1) // evicts 2 (min=5): count = 6, err = 5
	if ss.Size() != 2 {
		t.Fatalf("size = %d want 2", ss.Size())
	}
	if got := ss.Estimate(3); got != 6 {
		t.Fatalf("Estimate(3) = %v want 6", got)
	}
	if got := ss.ErrorOf(3); got != 5 {
		t.Fatalf("ErrorOf(3) = %v want 5", got)
	}
	if got := ss.Estimate(2); got != 0 {
		t.Fatalf("Estimate(2) = %v want 0 after eviction", got)
	}
}

func TestSpaceSavingMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(12)
		s1 := randStream(rng, 150, 5+rng.Intn(50), 10)
		s2 := randStream(rng, 150, 5+rng.Intn(50), 10)
		a, b := NewSpaceSaving(k), NewSpaceSaving(k)
		for _, it := range s1 {
			a.Update(it.Elem, it.Weight)
		}
		for _, it := range s2 {
			b.Update(it.Elem, it.Weight)
		}
		a.Merge(b)
		if a.Size() > k {
			return false
		}
		_, w := append(append(weightedStream{}, s1...), s2...).exact()
		return almostEq(a.Weight(), w, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingHeavyHittersAndReset(t *testing.T) {
	ss := NewSpaceSaving(5)
	ss.Update(1, 100)
	ss.Update(2, 50)
	ss.Update(3, 1)
	hh := ss.HeavyHitters(40)
	if len(hh) != 2 || hh[0].Elem != 1 {
		t.Fatalf("HeavyHitters = %v", hh)
	}
	ss.Reset()
	if ss.Size() != 0 || ss.Weight() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on k=0")
		}
	}()
	NewSpaceSaving(0)
}
