package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randRows(rng *rand.Rand, n, d int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func feedFD(f *FD, a *matrix.Dense) {
	for i := 0; i < a.Rows(); i++ {
		f.Append(a.Row(i))
	}
}

func TestFDExactWhenEllAtLeastD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randRows(rng, 50, 6)
	f := NewFD(6, 6)
	feedFD(f, a)
	g := f.Gram()
	want := matrix.Gram(a)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(g.At(i, j)-want.At(i, j)) > 1e-8*(1+want.MaxAbs()) {
				t.Fatalf("ℓ=d sketch not exact at (%d,%d)", i, j)
			}
		}
	}
	if f.Deducted() != 0 {
		t.Fatalf("Deducted = %v want 0 when ℓ ≥ rank", f.Deducted())
	}
}

// Property: the FD guarantee 0 ≤ ‖Ax‖² − ‖Bx‖² ≤ Deducted ≤ ‖A‖²_F/ℓ holds
// for random unit directions (the core invariant the paper builds on).
func TestFDGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(8)
		ell := 2 + rng.Intn(d)
		n := 20 + rng.Intn(200)
		a := randRows(rng, n, d)
		fd := NewFD(ell, d)
		feedFD(fd, a)
		fd.Flush()

		totF := a.FrobeniusSq()
		if fd.Deducted() > totF/float64(ell)+1e-7*totF {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			if matrix.Normalize(x) == 0 {
				continue
			}
			ax := matrix.NormSq(a.MulVec(x))
			bx := fd.Quad(x)
			diff := ax - bx
			if diff < -1e-7*(1+totF) || diff > fd.Deducted()+1e-7*(1+totF) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFDCovarianceErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randRows(rng, 300, 10)
	ell := 5
	fd := NewFD(ell, 10)
	feedFD(fd, a)
	diff := matrix.Gram(a)
	diff.SubSym(fd.Gram())
	norm, err := matrix.SpectralNormSym(diff)
	if err != nil {
		t.Fatal(err)
	}
	bound := a.FrobeniusSq() / float64(ell)
	if norm > bound*(1+1e-9) {
		t.Fatalf("‖AᵀA−BᵀB‖₂ = %v exceeds ‖A‖²_F/ℓ = %v", norm, bound)
	}
	if norm < 0 {
		t.Fatal("negative norm")
	}
}

func TestFDRowsMaterialization(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randRows(rng, 100, 7)
	fd := NewFD(4, 7)
	feedFD(fd, a)
	b := fd.Rows()
	if b.Rows() > 4 {
		t.Fatalf("materialized %d rows, ℓ=4", b.Rows())
	}
	// BᵀB from rows must match the factored Gram.
	g1 := matrix.Gram(b)
	g2 := fd.Gram()
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if math.Abs(g1.At(i, j)-g2.At(i, j)) > 1e-8*(1+g2.MaxAbs()) {
				t.Fatal("Rows() inconsistent with Gram()")
			}
		}
	}
}

// Merging two FD sketches must keep the additive error bound:
// deducted(merged) ≤ ‖A1‖²F/ℓ + ‖A2‖²F/ℓ + merge shrink ≤ (‖A1‖²F+‖A2‖²F)/ℓ·2.
func TestFDMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 4 + rng.Intn(6)
		ell := 2 + rng.Intn(d-1)
		a1 := randRows(rng, 50+rng.Intn(100), d)
		a2 := randRows(rng, 50+rng.Intn(100), d)
		f1, f2 := NewFD(ell, d), NewFD(ell, d)
		feedFD(f1, a1)
		feedFD(f2, a2)
		f1.Merge(f2)

		total := a1.FrobeniusSq() + a2.FrobeniusSq()
		if !almostEq(f1.Total(), total, 1e-6*(1+total)) {
			return false
		}
		if f1.Deducted() > 2*total/float64(ell)+1e-7*total {
			return false
		}
		// Directional undercount stays within Deducted.
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			if matrix.Normalize(x) == 0 {
				continue
			}
			ax := matrix.NormSq(a1.MulVec(x)) + matrix.NormSq(a2.MulVec(x))
			bx := f1.Quad(x)
			diff := ax - bx
			if diff < -1e-7*(1+total) || diff > f1.Deducted()+1e-7*(1+total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFDTruncatedGram(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randRows(rng, 60, 8)
	fd := NewFD(8, 8) // exact
	feedFD(fd, a)
	gk := fd.TruncatedGram(3)
	vals, _, err := matrix.EigSym(gk)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, v := range vals {
		if v > 1e-8 {
			pos++
		}
	}
	if pos > 3 {
		t.Fatalf("truncated Gram has rank %d > 3", pos)
	}
	// Clamp: k larger than size.
	_ = fd.TruncatedGram(100)
}

func TestFDQuadIncludesBuffer(t *testing.T) {
	fd := NewFD(4, 3)
	fd.Append([]float64{1, 0, 0}) // stays in buffer (bufCap ≥ 8)
	x := []float64{1, 0, 0}
	if got := fd.Quad(x); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Quad with buffered row = %v want 1", got)
	}
	if got := fd.Total(); got != 1 {
		t.Fatalf("Total = %v want 1", got)
	}
}

func TestFDReset(t *testing.T) {
	fd := NewFD(3, 3)
	fd.Append([]float64{1, 2, 3})
	fd.Reset()
	if fd.Total() != 0 || fd.Size() != 0 || fd.Deducted() != 0 {
		t.Fatal("Reset incomplete")
	}
	if fd.Quad([]float64{1, 0, 0}) != 0 {
		t.Fatal("Quad nonzero after Reset")
	}
}

func TestFDValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid ℓ")
		}
	}()
	NewFD(0, 3)
}

func TestFDAppendWrongDim(t *testing.T) {
	fd := NewFD(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong row length")
		}
	}()
	fd.Append([]float64{1, 2})
}

func TestFDMergeWrongDim(t *testing.T) {
	a, b := NewFD(3, 3), NewFD(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	a.Merge(b)
}
