package sketch

import (
	"math/rand"
	"testing"
)

func BenchmarkMGUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randStream(rng, 100_000, 5000, 100)
	m := NewMG(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		m.Update(it.Elem, it.Weight)
	}
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randStream(rng, 100_000, 5000, 100)
	ss := NewSpaceSaving(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		ss.Update(it.Elem, it.Weight)
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := randStream(rng, 100_000, 5000, 100)
	cm := NewCountMin(2048, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		cm.Update(it.Elem, it.Weight)
	}
}

// BenchmarkFDAppend measures the amortized per-row cost of the batched FD
// sketch in its shrinking regime (ℓ < d).
func BenchmarkFDAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const d = 44
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	fd := NewFD(20, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Append(rows[i%len(rows)])
	}
}

// BenchmarkFDAppendExact measures the per-row cost in exact mode (ℓ ≥ d):
// a pure rank-1 Gram update.
func BenchmarkFDAppendExact(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const d = 44
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	fd := NewFD(d, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Append(row)
	}
}

func BenchmarkFDMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const d = 44
	mk := func() *FD {
		f := NewFD(20, d)
		for i := 0; i < 200; i++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			f.Append(row)
		}
		return f
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}
