package sketch

import (
	"math/rand"
	"testing"
)

func BenchmarkMGUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randStream(rng, 100_000, 5000, 100)
	m := NewMG(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		m.Update(it.Elem, it.Weight)
	}
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randStream(rng, 100_000, 5000, 100)
	ss := NewSpaceSaving(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		ss.Update(it.Elem, it.Weight)
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := randStream(rng, 100_000, 5000, 100)
	cm := NewCountMin(2048, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s[i%len(s)]
		cm.Update(it.Elem, it.Weight)
	}
}

// BenchmarkFDAppend measures the amortized per-row cost of the batched FD
// sketch in its shrinking regime (ℓ < d).
func BenchmarkFDAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const d = 44
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	fd := NewFD(20, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Append(rows[i%len(rows)])
	}
}

// BenchmarkFDAppendExact measures the per-row cost in exact mode (ℓ ≥ d):
// a pure rank-1 Gram update.
func BenchmarkFDAppendExact(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const d = 44
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	fd := NewFD(d, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Append(row)
	}
}

func BenchmarkFDMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const d = 44
	mk := func() *FD {
		f := NewFD(20, d)
		for i := 0; i < 200; i++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			f.Append(row)
		}
		return f
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}

// BenchmarkFDIngest is the blocked-vs-unblocked matrix ingest comparison
// behind the repo's ≥3× acceptance bar: "unblocked" is the row-at-a-time
// baseline (block 1: one factorize-and-shrink per row once the sketch
// saturates), "blocked" the default 2ℓ buffer — fed per row (Append) and
// in whole batches (AppendRows).
func BenchmarkFDIngest(b *testing.B) {
	const d, ell, slab = 64, 16, 256
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	perRow := func(fd *FD) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fd.Append(rows[i%len(rows)])
			}
			reportRowsPerSec(b)
		}
	}
	b.Run("unblocked-row-at-a-time", perRow(NewFDBuffered(ell, d, 1)))
	b.Run("blocked-append", perRow(NewFD(ell, d)))
	b.Run("blocked-batch", func(b *testing.B) {
		fd := NewFD(ell, d)
		b.ReportAllocs()
		for n := 0; n < b.N; n += slab {
			k := slab
			if n+k > b.N {
				k = b.N - n
			}
			fd.AppendRows(rows[:k])
		}
		reportRowsPerSec(b)
	})
}

// reportRowsPerSec derives the headline rows/sec metric from the measured
// per-op time.
func reportRowsPerSec(b *testing.B) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "rows/s")
	}
}
