// Package mutexguard fixtures: positive and negative cases for the
// mutexguard analyzer.
package mutexguard

import "sync"

type counter struct {
	mu sync.Mutex
	//distlint:guarded-by mu
	n int

	unguarded int
}

type stats struct {
	rw sync.RWMutex
	//distlint:guarded-by rw
	hits int
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferred is the defer-unlock idiom: the lock is held to function exit.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want `guarded by c.mu but accessed without it held`
}

func (c *counter) free() int {
	return c.unguarded
}

// earlyReturn is the lock–check–unlock-early-return idiom: the terminated
// branch must not leak its lock state past the if.
func (c *counter) earlyReturn() int {
	c.mu.Lock()
	if c.n > 0 {
		v := c.n
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	return 0
}

func (c *counter) unlockThenUse() {
	c.mu.Lock()
	c.mu.Unlock()
	c.n++ // want `guarded by c.mu but accessed without it held`
}

// branchMayUnlock: one arm releases, so after the join the lock cannot be
// assumed held.
func (c *counter) branchMayUnlock(drop bool) {
	c.mu.Lock()
	if drop {
		c.mu.Unlock()
	}
	c.n++ // want `guarded by c.mu but accessed without it held`
	if !drop {
		c.mu.Unlock()
	}
}

// bump documents that its caller holds the lock.
//
//distlint:caller-holds mu
func (c *counter) bump() {
	c.n++
}

// addLocked follows the *Locked naming convention: assumed held.
func (c *counter) addLocked(d int) {
	c.n += d
}

// spawned goroutines hold nothing, whatever the spawner holds.
func (c *counter) goroutine() {
	c.mu.Lock()
	go func() {
		c.n++ // want `guarded by c.mu but accessed without it held`
	}()
	c.n++
	c.mu.Unlock()
}

// wrongReceiver: holding c's lock says nothing about other's fields.
func (c *counter) wrongReceiver(other *counter) {
	c.mu.Lock()
	other.n++ // want `guarded by other.mu but accessed without it held`
	c.mu.Unlock()
}

// readLock: RLock counts as holding for reads (the analyzer does not
// distinguish read and write accesses; the write path is vetted by race).
func (s *stats) readLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.hits
}

func (s *stats) badHits() int {
	return s.hits // want `guarded by s.rw but accessed without it held`
}
