// Package hotpathalloc fixtures: positive and negative cases for the
// hotpathalloc analyzer.
package hotpathalloc

type buf struct {
	vals []float64
	tag  string
}

// addBlock is the shape of a real hot loop: index arithmetic and in-place
// accumulation only. No diagnostics.
//
//distlint:hotpath
func addBlock(b *buf, rows [][]float64) {
	for _, r := range rows {
		for i, v := range r {
			b.vals[i] += v
		}
	}
}

// coldGrow is NOT annotated: the same constructs are fine off the hot path.
func coldGrow(b *buf, v float64) {
	b.vals = append(b.vals, v)
	_ = make([]float64, 8)
}

//distlint:hotpath
func grow(b *buf, v float64) {
	b.vals = append(b.vals, v) // want `append may grow its backing array`
}

//distlint:hotpath
func scratch(n int) []float64 {
	return make([]float64, n) // want `make allocates`
}

//distlint:hotpath
func newBox() *buf {
	return new(buf) // want `new allocates`
}

//distlint:hotpath
func literals() {
	_ = []float64{1, 2}  // want `slice literal allocates`
	_ = map[string]int{} // want `map literal allocates`
	_ = &buf{}           // want `pointer to composite literal allocates`
}

//distlint:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `closure allocates`
}

//distlint:hotpath
func box(v float64) any {
	return any(v) // want `conversion boxes a concrete value into an interface`
}

//distlint:hotpath
func stringify(b *buf) []byte {
	return []byte(b.tag) // want `string/slice conversion allocates`
}

func logf(args ...any) {}

//distlint:hotpath
func variadic(v float64) {
	logf("v", v) // want `arguments box into a variadic interface parameter`
}

// guardPanic shows the panic exemption: everything inside panic arguments
// is off the steady-state path, including the boxing sprintf would do.
//
//distlint:hotpath
func guardPanic(b *buf, i int) float64 {
	if i >= len(b.vals) {
		panic(any(i))
	}
	return b.vals[i]
}

// pooled shows the alloc-ok hatch on the pool-growth line.
//
//distlint:hotpath
func pooled(free [][]float64, n int) []float64 {
	if len(free) == 0 {
		return make([]float64, n) //distlint:alloc-ok pool growth is cold by design
	}
	return free[len(free)-1]
}

// pooledStandalone shows the standalone-comment form covering the line below.
//
//distlint:hotpath
func pooledStandalone(n int) []float64 {
	//distlint:alloc-ok pool growth is cold by design
	return make([]float64, n)
}
