// Package snapshotpurity fixtures: positive and negative cases for the
// snapshotpurity analyzer.
package snapshotpurity

type state struct {
	vals []float64
	meta map[string]int
	next *state
}

type snap struct {
	vals []float64
	meta map[string]int
	link *state
}

// Snapshot aliases live storage three ways.
func (s *state) Snapshot() *snap {
	out := &snap{
		vals: s.vals, // want `aliases live storage`
	}
	out.meta = s.meta // want `aliases live storage`
	out.link = s.next // want `aliases live storage`
	return out
}

// SnapshotCopy is the deep-copy idiom: everything routes through calls or
// fresh allocations, so nothing is reported.
func (s *state) SnapshotCopy() *snap {
	vals := make([]float64, len(s.vals))
	copy(vals, s.vals)
	meta := make(map[string]int, len(s.meta))
	for k, v := range s.meta {
		meta[k] = v
	}
	return &snap{vals: vals, meta: meta}
}

// SnapshotValues: scalar loads from the receiver are reads, not aliases.
func (s *state) SnapshotValues() (int, float64) {
	n := len(s.vals)
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return n, sum
}

// Restore aliases the decoded snapshot the caller still holds.
func (s *state) Restore(sn *snap) {
	s.vals = sn.vals // want `aliases the snapshot's storage`
	s.meta = sn.meta // want `aliases the snapshot's storage`
}

// RestoreCopy reuses live capacity and copies element-wise: clean.
func (s *state) RestoreCopy(sn *snap) {
	s.vals = append(s.vals[:0], sn.vals...)
	s.meta = make(map[string]int, len(sn.meta))
	for k, v := range sn.meta {
		s.meta[k] = v
	}
}

// RestoreShared documents an intentional shallow adoption with the hatch.
func (s *state) RestoreShared(sn *snap) {
	s.vals = sn.vals //distlint:alias-ok caller transfers ownership of the decoded buffer
}

// unrelatedStore is not a Snapshot*/Restore* function: aliasing is the
// normal state of affairs elsewhere.
func (s *state) unrelatedStore(o *state) {
	s.vals = o.vals
}
