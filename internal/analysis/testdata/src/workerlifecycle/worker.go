// Package workerlifecycle fixtures: positive and negative cases for the
// workerlifecycle analyzer.
package workerlifecycle

// pool is the sharded-ingest shape: per-worker queues, shut down by closing
// every queue.
type pool struct {
	queues []chan int
	done   chan struct{}
}

func (p *pool) startRanged() {
	for i := range p.queues {
		go p.worker(p.queues[i])
	}
}

func (p *pool) worker(q chan int) {
	for range q {
	}
}

func (p *pool) Close() {
	for _, q := range p.queues {
		close(q)
	}
}

// startSelect is the done-channel idiom: a select clause that returns.
func (p *pool) startSelect() {
	go func() {
		for {
			select {
			case v := <-p.queues[0]:
				_ = v
			case <-p.done:
				return
			}
		}
	}()
}

// startCompute launches a goroutine with no channel receives at all: out of
// scope for the lifecycle check.
func (p *pool) startCompute(out *int) {
	go func() {
		*out = 42
	}()
}

// leaky ranges a channel nothing ever closes.
type leaky struct {
	in chan int
}

func (l *leaky) start() {
	go l.run() // want `no reachable shutdown path`
}

func (l *leaky) run() {
	for range l.in {
	}
}

func (l *leaky) startLit() {
	go func() { // want `no reachable shutdown path`
		for v := range l.in {
			_ = v
		}
	}()
}

// startWaived hands lifecycle responsibility elsewhere explicitly.
func (l *leaky) startWaived() {
	go l.run() //distlint:lifecycle-ok drained and abandoned at process exit in tests
}
