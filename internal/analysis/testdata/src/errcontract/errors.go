// Package errcontract fixtures: positive and negative cases for the
// errcontract analyzer.
package errcontract

import (
	"errors"
	"fmt"
	"io"
)

var ErrBad = errors.New("bad")

func wrapGood(err error) error {
	return fmt.Errorf("loading config: %w", err)
}

func wrapTwo(err error) error {
	return fmt.Errorf("%w: %w", ErrBad, err)
}

func wrapBad(err error) error {
	return fmt.Errorf("loading config: %v", err) // want `no %w`
}

func wrapOneOfTwo(err error) error {
	return fmt.Errorf("%w from %v", ErrBad, err) // want `no %w`
}

func percentLiteral(pct float64) error {
	return fmt.Errorf("%.0f%% over budget", pct)
}

func cmpNil(err error) bool {
	return err != nil
}

func cmpSentinel(err error) bool {
	return err == ErrBad || errors.Is(err, io.EOF) || err == io.EOF
}

func cmpBad(a, b error) bool {
	return a == b // want `use errors.Is`
}

func cmpLocal(err error) bool {
	local := errors.New("transient")
	return err == local // want `use errors.Is`
}

func report() error {
	panic("not implemented") // want `panic outside a deprecated shim`
}

// Deprecated: use report, which returns an error.
func mustReport() {
	panic("legacy contract")
}

func unreachable(ok bool) {
	if !ok {
		//distlint:panic-ok validated by the caller, provably unreachable
		panic("unreachable")
	}
}
