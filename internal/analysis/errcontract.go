package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

// ErrContract enforces the error conventions of the public facade and the
// service layer (the driver applies it to package repro and
// repro/internal/service):
//
//   - fmt.Errorf with an error-typed argument must wrap it with %w — %v/%s
//     break errors.Is/As chains, so ErrBusy, ErrNotFound, and friends stop
//     matching once a layer forgets to wrap;
//   - errors are never compared with == or != unless the other side is nil
//     or a sentinel (a package-level Err* variable or io.EOF); anything
//     else must use errors.Is, or wrapped errors silently stop matching;
//   - panic is reserved for the deprecated pre-Config shims — everything
//     else in these packages reports errors. Deliberate exceptions (e.g. a
//     provably unreachable branch) carry //distlint:panic-ok with a
//     justification.
var ErrContract = &lintkit.Analyzer{
	Name: "errcontract",
	Doc:  "enforce %w wrapping, errors.Is comparisons, and no-panic in facade/service code",
	Run:  runErrContract,
}

func runErrContract(pass *lintkit.Pass) error {
	esc := newEscapeLines(pass, "panic-ok")
	errType := types.Universe.Lookup("error").Type()
	for _, fd := range funcDecls(pass) {
		deprecated := isDeprecated(fd.Doc)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n, errType)
				if isBuiltinCall(pass, n, "panic") && !deprecated && !esc.covers(pass.Fset, n.Pos()) {
					pass.Reportf(n.Pos(), "panic outside a deprecated shim; return an error (or annotate //distlint:panic-ok with a justification)")
				}
			case *ast.BinaryExpr:
				checkErrComparison(pass, n, errType)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap reports fmt.Errorf calls whose error-typed arguments are
// not all wrapped with %w.
func checkErrorfWrap(pass *lintkit.Pass, call *ast.CallExpr, errType types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	wraps := strings.Count(strings.ReplaceAll(format, "%%", ""), "%w")
	errArgs := 0
	for _, a := range call.Args[1:] {
		if t := pass.TypesInfo.Types[a].Type; t != nil && types.AssignableTo(t, errType) && !isNilExpr(pass, a) {
			errArgs++
		}
	}
	if errArgs > wraps {
		pass.Reportf(call.Pos(), "fmt.Errorf with an error argument but no %%w: wrap the error so errors.Is/As keep matching")
	}
}

// checkErrComparison reports ==/!= between errors unless one side is nil or
// a sentinel.
func checkErrComparison(pass *lintkit.Pass, b *ast.BinaryExpr, errType types.Type) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	tx := pass.TypesInfo.Types[b.X].Type
	ty := pass.TypesInfo.Types[b.Y].Type
	if tx == nil || ty == nil {
		return
	}
	if !types.Identical(tx, errType) && !types.Identical(ty, errType) {
		return
	}
	if isNilExpr(pass, b.X) || isNilExpr(pass, b.Y) {
		return
	}
	if isSentinel(pass, b.X) || isSentinel(pass, b.Y) {
		return
	}
	pass.Reportf(b.OpPos, "non-sentinel errors compared with %s: use errors.Is, which matches through %%w wrapping", b.Op)
}

// isSentinel reports whether e denotes a package-level error variable
// following the sentinel convention (Err* prefix, or io.EOF).
func isSentinel(pass *lintkit.Pass, e ast.Expr) bool {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	return strings.HasPrefix(v.Name(), "Err") || v.Name() == "EOF"
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// constantString returns e's constant string value.
func constantString(pass *lintkit.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
