// Package analysis is distlint: the project-specific static-analysis suite
// that mechanically enforces the codebase's unwritten contracts — zero-alloc
// steady-state hot paths, mutex-guarded shared state, deep-copied snapshots,
// sentinel-error wrapping, and worker-goroutine lifecycles. The analyzers
// run on lintkit (a stdlib-only go/analysis workalike) through the
// cmd/distlint driver, which `make lint` and CI invoke on every package.
//
// Contracts are declared in source with //distlint: directive comments:
//
//	//distlint:hotpath          (function) steady state must not allocate
//	//distlint:alloc-ok         (line) permitted allocation, e.g. pool growth
//	//distlint:guarded-by mu    (struct field) only touch with mu held
//	//distlint:caller-holds mu  (function) lock discipline is the caller's
//	//distlint:alias-ok         (line) permitted snapshot aliasing
//	//distlint:panic-ok         (line) permitted panic, e.g. unreachable
//	//distlint:lifecycle-ok     (line) goroutine shutdown handled elsewhere
//
// Escape-hatch directives apply to their own line and, when written as a
// standalone comment line, to the line directly below; every hatch should
// carry a justification after the directive. See CONTRIBUTING.md for the
// full vocabulary and policy.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis/lintkit"
)

// directivePrefix introduces every distlint annotation. Directive comments
// (no space after //) survive gofmt and are excluded from godoc text.
const directivePrefix = "//distlint:"

// directives returns the distlint directive lines in a comment group, with
// the prefix stripped: "//distlint:guarded-by mu" yields "guarded-by mu".
func directives(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

// hasDirective reports whether the comment group carries the named
// directive (exactly, ignoring any argument).
func hasDirective(cg *ast.CommentGroup, name string) bool {
	for _, d := range directives(cg) {
		if d == name || strings.HasPrefix(d, name+" ") {
			return true
		}
	}
	return false
}

// directiveArg returns the argument of the named directive in the group
// ("guarded-by mu" → "mu"), and whether the directive is present.
func directiveArg(cg *ast.CommentGroup, name string) (string, bool) {
	for _, d := range directives(cg) {
		if rest, ok := strings.CutPrefix(d, name); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// escapeLines collects the lines covered by an escape-hatch directive such
// as "alloc-ok": the directive's own line (trailing-comment form) and the
// line below it (standalone-comment form). Keys are file base positions, so
// the map is valid across all files of the pass.
type escapeLines map[string]map[int]bool

// newEscapeLines scans the pass's files for the named directive.
func newEscapeLines(pass *lintkit.Pass, name string) escapeLines {
	esc := escapeLines{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix+name)
				if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := esc[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					esc[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return esc
}

// covers reports whether pos falls on an escaped line.
func (e escapeLines) covers(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return e[p.Filename][p.Line]
}

// funcDecls yields every function declaration with a body in the pass.
func funcDecls(pass *lintkit.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// isDeprecated reports whether a doc comment marks its declaration
// deprecated, the convention the error-contract analyzer exempts.
func isDeprecated(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, line := range strings.Split(cg.Text(), "\n") {
		if strings.HasPrefix(line, "Deprecated:") {
			return true
		}
	}
	return false
}
