package analysis

import "repro/internal/analysis/lintkit"

// All returns every distlint analyzer, unscoped. The test harness runs
// these directly against fixtures; the driver uses Suite to respect each
// analyzer's package scope.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		ErrContract,
		HotPathAlloc,
		MutexGuard,
		SnapshotPurity,
		WorkerLifecycle,
	}
}

// Suite returns the analyzers that apply to the package with the given
// import path. Directive-driven analyzers (hotpath, guarded-by, snapshot
// aliasing) run everywhere — they only fire where annotations exist.
// ErrContract is scoped to the public facade and the service layer, whose
// error-handling conventions it encodes; WorkerLifecycle is scoped to the
// packages that spawn long-lived worker goroutines (matrix and item ingest
// shards, the service layer's shared ingestion pool dispatcher, the wire
// transport's connection managers and listeners, and the write-ahead
// log's interval flusher).
func Suite(pkgPath string) []*lintkit.Analyzer {
	suite := []*lintkit.Analyzer{HotPathAlloc, MutexGuard, SnapshotPurity}
	switch pkgPath {
	case "repro", "repro/internal/service":
		suite = append(suite, ErrContract)
	}
	switch pkgPath {
	case "repro/internal/core", "repro/internal/hh", "repro/internal/quantile",
		"repro/internal/service", "repro/internal/wire", "repro/internal/wal":
		suite = append(suite, WorkerLifecycle)
	}
	return suite
}
