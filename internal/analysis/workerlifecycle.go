package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// WorkerLifecycle checks that worker goroutines have a reachable shutdown
// path (the driver applies it to repro/internal/core and
// repro/internal/service, the two packages that spawn long-lived workers).
// A goroutine that receives from a channel must either
//
//   - select on a done-style channel in a clause that returns (the hosted
//     Tracker's `case <-t.closed: return` idiom), or
//   - range over a channel whose origin is close()d somewhere in the
//     package (the ShardedTracker's `for b := range st.queues[i]` fed by
//     Close's `for _, q := range st.queues { close(q) }`).
//
// Otherwise the goroutine leaks on shutdown: it blocks in its receive
// forever, pinning its stack and whatever state it captured. Launches whose
// shutdown is handled by some mechanism the analyzer cannot see are waived
// with //distlint:lifecycle-ok on the go statement's line.
//
// Resolution is same-package and one level deep: `go st.worker(i)` is
// followed into worker's declaration with arguments substituted for
// parameters, and close() targets are traced through one local alias
// (a range variable or a simple assignment) to the field they came from.
var WorkerLifecycle = &lintkit.Analyzer{
	Name: "workerlifecycle",
	Doc:  "report worker goroutines with no reachable close/Stop/done shutdown path",
	Run:  runWorkerLifecycle,
}

type lifecycle struct {
	pass *lintkit.Pass
	// aliases maps a local variable to the object its channel value came
	// from (one dataflow step: range value vars and simple assignments).
	aliases map[types.Object]types.Object
	// closed holds the origin objects of every close() target in the package.
	closed map[types.Object]bool
	// decls indexes this package's function declarations by their object.
	decls map[types.Object]*ast.FuncDecl
}

func runWorkerLifecycle(pass *lintkit.Pass) error {
	lc := &lifecycle{
		pass:    pass,
		aliases: map[types.Object]types.Object{},
		closed:  map[types.Object]bool{},
		decls:   map[types.Object]*ast.FuncDecl{},
	}
	lc.collectFacts()
	esc := newEscapeLines(pass, "lifecycle-ok")
	for _, fd := range funcDecls(pass) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if esc.covers(pass.Fset, g.Pos()) {
				return true
			}
			lc.checkLaunch(g)
			return true
		})
	}
	return nil
}

// collectFacts builds the alias map, the closed-origin set, and the
// declaration index in one pass over the package.
func (lc *lifecycle) collectFacts() {
	for _, f := range lc.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if obj := lc.pass.TypesInfo.Defs[n.Name]; obj != nil && n.Body != nil {
					lc.decls[obj] = n
				}
			case *ast.RangeStmt:
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := lc.pass.TypesInfo.Defs[id]; obj != nil {
						if origin := lc.origin(n.X, nil); origin != nil {
							lc.aliases[obj] = origin
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := lc.pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = lc.pass.TypesInfo.Uses[id]
						}
						if obj == nil {
							continue
						}
						if origin := lc.origin(n.Rhs[i], nil); origin != nil && origin != obj {
							lc.aliases[obj] = origin
						}
					}
				}
			case *ast.CallExpr:
				if isBuiltinCall(lc.pass, n, "close") && len(n.Args) == 1 {
					if origin := lc.origin(n.Args[0], nil); origin != nil {
						lc.closed[origin] = true
					}
				}
			}
			return true
		})
	}
}

// origin resolves an expression to the object its value originates from,
// stripping indexing/slicing/parens, resolving struct-field selections to
// the field object, and following local aliases (bounded). subst maps
// parameter objects to caller argument expressions for one inlining level;
// a nil map means no substitution.
func (lc *lifecycle) origin(e ast.Expr, subst map[types.Object]ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := lc.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			e = x.X
		case *ast.Ident:
			obj := lc.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = lc.pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return nil
			}
			if arg, ok := subst[obj]; ok {
				return lc.origin(arg, nil)
			}
			for i := 0; i < 4; i++ {
				next, ok := lc.aliases[obj]
				if !ok {
					break
				}
				obj = next
			}
			return obj
		default:
			return nil
		}
	}
}

// checkLaunch resolves one go statement to a function body and verifies its
// shutdown path.
func (lc *lifecycle) checkLaunch(g *ast.GoStmt) {
	body, subst := lc.resolveTarget(g.Call)
	if body == nil {
		return
	}
	recv, ranged := lc.channelOps(body)
	if !recv && len(ranged) == 0 {
		return
	}
	if hasDoneSelect(body) {
		return
	}
	for _, r := range ranged {
		if origin := lc.origin(r, subst); origin != nil && lc.closed[origin] {
			return
		}
	}
	lc.pass.Reportf(g.Pos(), "goroutine receives from a channel but has no reachable shutdown path (no done-channel select, and its input channel is never closed); add one or annotate //distlint:lifecycle-ok")
}

// resolveTarget returns the launched function's body and a parameter→
// argument substitution map. Function literals resolve directly; calls to
// same-package functions and methods resolve through their declaration.
func (lc *lifecycle) resolveTarget(call *ast.CallExpr) (*ast.BlockStmt, map[types.Object]ast.Expr) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body, nil
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = lc.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = lc.pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil, nil
	}
	fd, ok := lc.decls[obj]
	if !ok {
		return nil, nil
	}
	subst := map[types.Object]ast.Expr{}
	i := 0
	for _, p := range fd.Type.Params.List {
		for _, name := range p.Names {
			if i < len(call.Args) {
				if pobj := lc.pass.TypesInfo.Defs[name]; pobj != nil {
					subst[pobj] = call.Args[i]
				}
			}
			i++
		}
	}
	return fd.Body, subst
}

// channelOps reports whether the body contains channel receives and returns
// the expressions it ranges over that have channel type.
func (lc *lifecycle) channelOps(body *ast.BlockStmt) (recv bool, ranged []ast.Expr) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				recv = true
			}
		case *ast.RangeStmt:
			if t := lc.pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					recv = true
					ranged = append(ranged, n.X)
				}
			}
		}
		return true
	})
	return recv, ranged
}

// hasDoneSelect reports whether the body contains a select with a receive
// clause that returns — the done-channel shutdown idiom.
func hasDoneSelect(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return !found
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil || !isReceiveComm(cc.Comm) {
				continue
			}
			if containsReturn(cc.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isReceiveComm reports whether a select comm statement is a channel receive.
func isReceiveComm(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := s.Rhs[0].(*ast.UnaryExpr)
			return ok && u.Op.String() == "<-"
		}
	}
	return false
}

// containsReturn reports whether the statement list contains a return.
func containsReturn(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.ReturnStmt); ok {
				found = true
			}
			_, isLit := n.(*ast.FuncLit)
			return !found && !isLit
		})
	}
	return found
}
