package lintkit

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadModulePackage type-checks a real module package against the build
// cache's export data — the load path the distlint driver uses.
func TestLoadModulePackage(t *testing.T) {
	l := NewLoader("")
	pkgs, err := l.Load("repro/internal/sketch")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "repro/internal/sketch" {
		t.Fatalf("ImportPath = %q", pkg.ImportPath)
	}
	if pkg.Types.Scope().Lookup("FD") == nil {
		t.Fatalf("type-checked package is missing sketch.FD")
	}
	// Selections must resolve so mutexguard can map field accesses, and
	// Uses must reach through export data into dependencies.
	if len(pkg.Info.Uses) == 0 || len(pkg.Info.Defs) == 0 {
		t.Fatalf("types.Info not populated: %d uses, %d defs", len(pkg.Info.Uses), len(pkg.Info.Defs))
	}
	crossPkg := false
	for _, obj := range pkg.Info.Uses {
		if obj.Pkg() != nil && obj.Pkg().Path() != pkg.ImportPath {
			crossPkg = true
			break
		}
	}
	if !crossPkg {
		t.Fatalf("no cross-package uses resolved; export-data importer is not wired")
	}
}

// TestLoadReportsBrokenPatterns pins that load errors surface instead of
// silently analyzing nothing.
func TestLoadReportsBrokenPatterns(t *testing.T) {
	l := NewLoader("")
	if _, err := l.Load("repro/internal/does-not-exist"); err == nil {
		t.Fatalf("Load of a nonexistent package succeeded")
	}
}

// TestRunSortsDiagnostics pins the driver-facing output ordering contract.
func TestRunSortsDiagnostics(t *testing.T) {
	l := NewLoader("")
	pkgs, err := l.Load("repro/internal/sketch")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	reportAll := &Analyzer{
		Name: "reportall",
		Doc:  "test analyzer reporting every function declaration",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := Run(pkgs, []*Analyzer{reportAll})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := pkgs[0].Fset.Position(diags[i-1].Pos), pkgs[0].Fset.Position(diags[i].Pos)
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
		if !strings.HasPrefix(diags[i].Message, "func ") {
			t.Fatalf("unexpected message %q", diags[i].Message)
		}
	}
}
