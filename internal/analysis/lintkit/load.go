package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// pkgMeta is the slice of `go list -json` output the loader consumes.
type pkgMeta struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
	DepOnly    bool
}

// Loader resolves and type-checks packages. All packages loaded through one
// Loader share a FileSet, so diagnostics across packages sort coherently.
// Dependency types come from the build cache's export data (`go list
// -export`), so only the packages under analysis are type-checked from
// source; run `go build ./...` first if the cache may be cold (the Makefile
// lint target does).
type Loader struct {
	// Dir is the working directory for `go list`, normally the module
	// root. Empty means the current directory.
	Dir string

	Fset  *token.FileSet
	metas map[string]*pkgMeta
	typed map[string]*types.Package
	imp   types.Importer
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:   dir,
		Fset:  token.NewFileSet(),
		metas: map[string]*pkgMeta{},
		typed: map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// lookup serves export data for the gc importer from the metadata the
// loader has listed.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	m, ok := l.metas[path]
	if !ok || m.Export == "" {
		return nil, fmt.Errorf("lintkit: no export data for %q", path)
	}
	return os.Open(m.Export)
}

// list runs `go list -e -export -deps -json` on the patterns and folds the
// results into the loader's metadata, returning the non-dependency roots in
// listing order.
func (l *Loader) list(patterns []string) ([]*pkgMeta, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Error,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintkit: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var roots []*pkgMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintkit: decoding go list output: %v", err)
		}
		mm := m
		l.metas[m.ImportPath] = &mm
		if !m.DepOnly {
			roots = append(roots, &mm)
		}
	}
	return roots, nil
}

// Load lists the patterns (go list syntax; testdata directories are skipped
// by go list itself) and type-checks every matched non-stdlib package from
// source. Dependencies are imported from export data, never re-checked.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, m := range roots {
		if m.Standard {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("lintkit: %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := l.check(m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package from source.
func (l *Loader) check(m *pkgMeta) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(m.ImportPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %v", m.ImportPath, err)
	}
	return &Package{
		ImportPath: m.ImportPath,
		Dir:        m.Dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadDir type-checks the .go files of one directory as a standalone
// package outside the module's package graph — the fixture loader. Imports
// resolve through `go list` run from the loader's Dir, so fixtures may
// import the standard library (and module packages, when Dir is inside the
// module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lintkit: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lintkit: no .go files in %s", dir)
	}
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		if _, err := l.list(paths); err != nil {
			return nil, err
		}
	}
	info := NewInfo()
	conf := types.Config{Importer: l.imp}
	path := files[0].Name.Name
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
