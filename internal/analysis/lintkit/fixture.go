package lintkit

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `// want "regexp"` annotation in a fixture file.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE pulls the quoted patterns off a want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// RunFixture type-checks the fixture package in dir (relative to the test's
// working directory) and asserts that the analyzers report exactly the
// diagnostics its `// want "regexp"` comments declare — the analysistest
// contract: every diagnostic must match a want on its line, every want must
// be matched by some diagnostic.
func RunFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	l := NewLoader("")
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claimWant(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every want comment in the package.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: malformed want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b c"` into its quoted tokens. Both double-quoted
// and backquoted patterns are accepted, as in analysistest.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 || (s[0] != '"' && s[0] != '`') {
			return out
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

// claimWant marks the first unmatched expectation on the diagnostic's line
// whose pattern matches, reporting whether one was found.
func claimWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// FormatDiagnostic renders a diagnostic as file:line:col: [analyzer] message,
// the clickable form the distlint driver prints.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
}
