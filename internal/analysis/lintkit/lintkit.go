// Package lintkit is the minimal analysis framework distlint runs on: a
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// surface the project's analyzers need (Analyzer, Pass, Diagnostic), a
// package loader that type-checks module source against the build cache's
// export data, and an analysistest-style fixture harness (fixture.go).
//
// The x/tools module is deliberately not imported: the repository builds
// with the standard library alone, and the API here mirrors go/analysis
// closely enough that the analyzers port mechanically if that dependency
// ever becomes available.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check, named like its go/analysis counterpart.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "hotpathalloc".
	Name string
	// Doc is the one-paragraph description `distlint -list` prints.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Run applies each analyzer to each package and returns every diagnostic,
// sorted by file position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	fset := token.NewFileSet()
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
