package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

// SnapshotPurity enforces the deep-copy contract on the checkpoint surface:
// Snapshot* constructors and Restore* functions must not alias slices, maps,
// or pointers between the live state and the snapshot — the class of bug
// that silently breaks bit-exact checkpoint restore (a later in-place
// mutation of the live tracker would rewrite a "captured" snapshot, or a
// restored tracker would share storage with the decoded snapshot a caller
// still holds).
//
// The check is a conservative aliasing scan: inside any function whose name
// starts with Snapshot or Restore, storing an expression that (a) is rooted
// at a parameter or the receiver, (b) reaches the store through only
// selections, indexing, and slicing (no call — calls are presumed to copy),
// and (c) has slice, map, or pointer type, is reported. Copy idioms —
// append(nil, src...), make+copy, RawData()-style accessors — all route
// through calls and pass. Intentional shallow stores (e.g. adopting a
// freshly built local) are waived line by line with //distlint:alias-ok.
var SnapshotPurity = &lintkit.Analyzer{
	Name: "snapshotpurity",
	Doc:  "report snapshot constructors and restorers that alias caller/receiver storage",
	Run:  runSnapshotPurity,
}

func runSnapshotPurity(pass *lintkit.Pass) error {
	esc := newEscapeLines(pass, "alias-ok")
	for _, fd := range funcDecls(pass) {
		name := fd.Name.Name
		if !strings.HasPrefix(name, "Snapshot") && !strings.HasPrefix(name, "Restore") &&
			!strings.HasPrefix(name, "snapshot") && !strings.HasPrefix(name, "restore") {
			continue
		}
		roots := collectRoots(pass, fd)
		if len(roots) == 0 {
			continue
		}
		checkAliasing(pass, esc, fd, roots)
	}
	return nil
}

// collectRoots gathers the objects whose storage must not leak: the
// receiver and every parameter.
func collectRoots(pass *lintkit.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	roots := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					roots[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return roots
}

// checkAliasing reports stores of root-aliasing expressions.
func checkAliasing(pass *lintkit.Pass, esc escapeLines, fd *ast.FuncDecl, roots map[types.Object]bool) {
	report := func(e ast.Expr, how string) {
		if esc.covers(pass.Fset, e.Pos()) {
			return
		}
		pass.Reportf(e.Pos(), "%s %s aliases %s storage; deep-copy it (snapshots must not share memory with live state)",
			how, types.ExprString(e), rootName(fd))
	}
	check := func(e ast.Expr, how string) {
		if e == nil {
			return
		}
		if !aliasKind(pass.TypesInfo.Types[e].Type) {
			return
		}
		if rootedAlias(pass, roots, e) {
			report(e, how)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				// Only stores into structured state matter: plain local
				// bindings of a root expression are reads until stored.
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					check(rhs, "assignment of")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					check(kv.Value, "composite literal field")
				} else {
					check(el, "composite literal element")
				}
			}
		}
		return true
	})
}

// aliasKind reports whether values of t share underlying storage when
// shallow-copied: slices, maps, and pointers.
func aliasKind(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// rootedAlias reports whether e reaches a root object through selections,
// indexing, slicing, and parens only — i.e. the value aliases the root's
// storage with no intervening copy.
func rootedAlias(pass *lintkit.Pass, roots map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return roots[pass.TypesInfo.Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// rootName names the aliased side for the diagnostic.
func rootName(fd *ast.FuncDecl) string {
	if strings.HasPrefix(strings.ToLower(fd.Name.Name), "restore") {
		return "the snapshot's"
	}
	return "live"
}
