package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/lintkit"
)

func TestHotPathAlloc(t *testing.T) {
	lintkit.RunFixture(t, "testdata/src/hotpathalloc", analysis.HotPathAlloc)
}

func TestMutexGuard(t *testing.T) {
	lintkit.RunFixture(t, "testdata/src/mutexguard", analysis.MutexGuard)
}

func TestSnapshotPurity(t *testing.T) {
	lintkit.RunFixture(t, "testdata/src/snapshotpurity", analysis.SnapshotPurity)
}

func TestErrContract(t *testing.T) {
	lintkit.RunFixture(t, "testdata/src/errcontract", analysis.ErrContract)
}

func TestWorkerLifecycle(t *testing.T) {
	lintkit.RunFixture(t, "testdata/src/workerlifecycle", analysis.WorkerLifecycle)
}

// TestSuiteScoping pins the driver's package scoping: directive-driven
// analyzers run everywhere, errcontract only on the facade and service,
// workerlifecycle only on the worker-spawning packages (core, hh,
// quantile, service, wire).
func TestSuiteScoping(t *testing.T) {
	names := func(as []*lintkit.Analyzer) map[string]bool {
		m := map[string]bool{}
		for _, a := range as {
			m[a.Name] = true
		}
		return m
	}
	for _, tc := range []struct {
		pkg         string
		errcontract bool
		lifecycle   bool
	}{
		{"repro", true, false},
		{"repro/internal/service", true, true},
		{"repro/internal/core", false, true},
		{"repro/internal/hh", false, true},
		{"repro/internal/quantile", false, true},
		{"repro/internal/wire", false, true},
		{"repro/internal/matrix", false, false},
		{"repro/internal/sketch", false, false},
	} {
		got := names(analysis.Suite(tc.pkg))
		for _, always := range []string{"hotpathalloc", "mutexguard", "snapshotpurity"} {
			if !got[always] {
				t.Errorf("Suite(%q): missing %s", tc.pkg, always)
			}
		}
		if got["errcontract"] != tc.errcontract {
			t.Errorf("Suite(%q): errcontract = %v, want %v", tc.pkg, got["errcontract"], tc.errcontract)
		}
		if got["workerlifecycle"] != tc.lifecycle {
			t.Errorf("Suite(%q): workerlifecycle = %v, want %v", tc.pkg, got["workerlifecycle"], tc.lifecycle)
		}
	}
	if len(analysis.All()) != 5 {
		t.Errorf("All() = %d analyzers, want 5", len(analysis.All()))
	}
}
