package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

// MutexGuard enforces the locking contract on fields annotated
// //distlint:guarded-by <mu> (the Accountant's stats, the service Manager's
// tracker map, the hosted Tracker's session): every access to a guarded
// field must happen while the named sibling mutex is held in the enclosing
// function.
//
// Lock state is tracked by a conservative walk of each function body in
// source order: mu.Lock()/mu.RLock() acquire, mu.Unlock()/mu.RUnlock()
// release, defer mu.Unlock() holds to function exit, and branches that end
// in return/panic do not leak their lock state past the branch (the
// lock–check–unlock-early-return idiom). Functions whose name ends in
// "Locked" and functions annotated //distlint:caller-holds <mu> are assumed
// to run with the lock held; goroutine bodies start with no locks held.
// The analysis is intraprocedural and textual about receivers: accesses and
// lock calls match when their base expression renders identically (t.mu
// guards t.sess, not other.sess).
var MutexGuard = &lintkit.Analyzer{
	Name: "mutexguard",
	Doc:  "report accesses to //distlint:guarded-by fields without the named mutex held",
	Run:  runMutexGuard,
}

// guardedField records one annotated struct field and its mutex's name.
type guardedField struct {
	fieldName string
	mu        string
}

type mutexGuard struct {
	pass *lintkit.Pass
	// guards maps the types.Var of each annotated field to its contract.
	guards map[types.Object]guardedField
}

func runMutexGuard(pass *lintkit.Pass) error {
	mg := &mutexGuard{pass: pass, guards: map[types.Object]guardedField{}}
	mg.collectGuards()
	if len(mg.guards) == 0 {
		return nil
	}
	for _, fd := range funcDecls(pass) {
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			continue
		}
		held := lockState{}
		if mu, ok := directiveArg(fd.Doc, "caller-holds"); ok {
			// The caller owns the discipline for the named mutex on the
			// receiver; seed the state as held for any base.
			held[wildcardBase+"."+mu] = 1
		}
		mg.walkStmts(fd.Body.List, held)
	}
	return nil
}

// collectGuards finds every //distlint:guarded-by annotation on a struct
// field and resolves the field's types.Var.
func (mg *mutexGuard) collectGuards() {
	for _, f := range mg.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := directiveArg(field.Doc, "guarded-by")
				if !ok {
					mu, ok = directiveArg(field.Comment, "guarded-by")
				}
				if !ok || mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := mg.pass.TypesInfo.Defs[name]; obj != nil {
						mg.guards[obj] = guardedField{fieldName: name.Name, mu: mu}
					}
				}
			}
			return true
		})
	}
}

// lockState maps "base.mu" keys to a held depth. wildcardBase marks locks
// seeded by caller-holds, which match any base expression.
type lockState map[string]int

const wildcardBase = "*"

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge keeps, for every key, the minimum depth across states — the
// conservative join after a branch.
func mergeStates(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0].clone()
	for k := range out {
		for _, s := range states[1:] {
			if s[k] < out[k] {
				out[k] = s[k]
			}
		}
	}
	return out
}

// held reports whether the mutex named mu on base is held.
func (s lockState) held(base, mu string) bool {
	return s[base+"."+mu] > 0 || s[wildcardBase+"."+mu] > 0
}

// walkStmts processes a statement list in order, returning the state after
// the list and whether it always terminates (return/panic/branch).
func (mg *mutexGuard) walkStmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = mg.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (mg *mutexGuard) walkStmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return mg.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return mg.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = mg.walkStmt(s.Init, st)
		}
		mg.scanExpr(s.Cond, st)
		thenSt, thenTerm := mg.walkStmts(s.Body.List, st.clone())
		var after []lockState
		if !thenTerm {
			after = append(after, thenSt)
		}
		if s.Else != nil {
			elseSt, elseTerm := mg.walkStmt(s.Else, st.clone())
			if !elseTerm {
				after = append(after, elseSt)
			}
		} else {
			after = append(after, st)
		}
		if len(after) == 0 {
			return st, true
		}
		return mergeStates(after), false
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = mg.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			mg.scanExpr(s.Cond, st)
		}
		bodySt, _ := mg.walkStmts(s.Body.List, st.clone())
		if s.Post != nil {
			mg.walkStmt(s.Post, bodySt)
		}
		return mergeStates([]lockState{st, bodySt}), false
	case *ast.RangeStmt:
		mg.scanExpr(s.X, st)
		bodySt, _ := mg.walkStmts(s.Body.List, st.clone())
		return mergeStates([]lockState{st, bodySt}), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return mg.walkCases(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			mg.scanExpr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function exit: no state
		// change. A deferred closure body runs against the current state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			mg.walkStmts(lit.Body.List, st.clone())
		} else {
			for _, a := range s.Call.Args {
				mg.scanExpr(a, st)
			}
		}
		return st, false
	case *ast.GoStmt:
		// A spawned goroutine holds nothing, whatever the spawner holds.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			mg.walkStmts(lit.Body.List, lockState{})
		}
		for _, a := range s.Call.Args {
			mg.scanExpr(a, st)
		}
		return st, false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isBuiltinCall(mg.pass, call, "panic") {
				mg.scanExpr(call, st)
				return st, true
			}
		}
		mg.scanStmtExprs(s, st)
		return st, false
	default:
		mg.scanStmtExprs(s, st)
		return st, false
	}
}

// walkCases handles switch/select: each clause runs against a copy of the
// incoming state; the join keeps the minimum.
func (mg *mutexGuard) walkCases(s ast.Stmt, st lockState) (lockState, bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = mg.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			mg.scanExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = mg.walkStmt(s.Init, st)
		}
		mg.scanStmtExprs(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	states := []lockState{st}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				mg.scanExpr(e, st)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				mg.scanStmtExprs(c.Comm, st)
			}
			stmts = c.Body
		}
		caseSt, term := mg.walkStmts(stmts, st.clone())
		if !term {
			states = append(states, caseSt)
		}
	}
	return mergeStates(states), false
}

// scanStmtExprs applies scanExpr to a simple statement's expressions,
// updating lock state in place for lock/unlock calls.
func (mg *mutexGuard) scanStmtExprs(s ast.Stmt, st lockState) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal defined (not necessarily run) here: analyze its body
			// against the current state — inline callbacks run synchronously,
			// and the conservative join already discards what it can't know.
			mg.walkStmts(n.Body.List, st.clone())
			return false
		case *ast.CallExpr:
			if base, mu, op, ok := mg.lockOp(n); ok {
				key := base + "." + mu
				switch op {
				case "Lock", "RLock":
					st[key]++
				case "Unlock", "RUnlock":
					st[key]--
				}
				return false
			}
		case *ast.SelectorExpr:
			mg.checkAccess(n, st)
		}
		return true
	})
}

// scanExpr checks guarded accesses and lock ops inside one expression.
func (mg *mutexGuard) scanExpr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	mg.scanStmtExprs(&ast.ExprStmt{X: e}, st)
}

// lockOp recognizes base.mu.Lock()/RLock()/Unlock()/RUnlock() calls where
// mu is the mutex named by any guard contract, returning the rendered base.
func (mg *mutexGuard) lockOp(call *ast.CallExpr) (base, mu, op string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	muSel, ok2 := sel.X.(*ast.SelectorExpr)
	if !ok2 {
		// A bare mutex (local or package-level): base is the empty string.
		if id, ok3 := sel.X.(*ast.Ident); ok3 {
			return "", id.Name, op, true
		}
		return "", "", "", false
	}
	return types.ExprString(muSel.X), muSel.Sel.Name, op, true
}

// checkAccess reports a guarded field access without its mutex held.
func (mg *mutexGuard) checkAccess(sel *ast.SelectorExpr, st lockState) {
	selection, ok := mg.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	g, ok := mg.guards[selection.Obj()]
	if !ok {
		return
	}
	base := types.ExprString(sel.X)
	if st.held(base, g.mu) {
		return
	}
	mg.pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s.%s but accessed without it held",
		g.fieldName, baseOrReceiver(base), g.mu)
}

// baseOrReceiver renders the base for the diagnostic message.
func baseOrReceiver(base string) string {
	if base == "" {
		return "its"
	}
	return base
}
