package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// HotPathAlloc enforces the repository's zero-alloc steady-state contract:
// a function annotated //distlint:hotpath (Sym.AddBlock, FD.AppendRows, the
// fast ingest modes, the sharded deal path, ...) must not contain
// heap-allocating constructs — make, new, append growth, slice/map
// composite literals, closures, string↔[]byte conversions, or boxing into
// interface parameters. Pool-growth and other cold-path allocations are
// waived line by line with //distlint:alloc-ok; expressions inside panic
// arguments are exempt wholesale (guard panics are off the steady-state
// path by definition).
//
// The perf suite's testing.AllocsPerRun guards prove specific drivers hit
// zero allocations; this analyzer keeps every edit to an annotated function
// honest without running a benchmark.
var HotPathAlloc = &lintkit.Analyzer{
	Name: "hotpathalloc",
	Doc:  "report heap-allocating constructs in //distlint:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *lintkit.Pass) error {
	esc := newEscapeLines(pass, "alloc-ok")
	for _, fd := range funcDecls(pass) {
		if !hasDirective(fd.Doc, "hotpath") {
			continue
		}
		checkHotPath(pass, esc, fd.Body)
	}
	return nil
}

// checkHotPath walks one hot function body reporting allocation sites.
func checkHotPath(pass *lintkit.Pass, esc escapeLines, body *ast.BlockStmt) {
	report := func(pos token.Pos, format string, args ...any) {
		if !esc.covers(pass.Fset, pos) {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// panic arguments never run on the steady-state path.
			if isBuiltinCall(pass, n, "panic") {
				return false
			}
			if isBuiltinCall(pass, n, "make") {
				report(n.Pos(), "make allocates in a hotpath function")
				return true
			}
			if isBuiltinCall(pass, n, "new") {
				report(n.Pos(), "new allocates in a hotpath function")
				return true
			}
			if isBuiltinCall(pass, n, "append") {
				report(n.Pos(), "append may grow its backing array in a hotpath function")
				return true
			}
			checkConversion(pass, report, n)
			checkVariadicBoxing(pass, report, n)
		case *ast.FuncLit:
			report(n.Pos(), "closure allocates in a hotpath function")
			return false
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates in a hotpath function")
			case *types.Map:
				report(n.Pos(), "map literal allocates in a hotpath function")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "pointer to composite literal allocates in a hotpath function")
				}
			}
		}
		return true
	})
}

// isBuiltinCall reports whether call invokes the named predeclared builtin.
func isBuiltinCall(pass *lintkit.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// checkConversion reports allocating string↔[]byte/[]rune conversions and
// explicit conversions into interface types (boxing).
func checkConversion(pass *lintkit.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type.Underlying()
	src := pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	srcU := src.Underlying()
	if types.IsInterface(dst) && !types.IsInterface(srcU) {
		report(call.Pos(), "conversion boxes a concrete value into an interface in a hotpath function")
		return
	}
	_, dstSlice := dst.(*types.Slice)
	_, srcSlice := srcU.(*types.Slice)
	dstStr := isString(dst)
	srcStr := isString(srcU)
	if (dstStr && srcSlice) || (dstSlice && srcStr) {
		report(call.Pos(), "string/slice conversion allocates in a hotpath function")
	}
}

// checkVariadicBoxing reports calls that spread arguments into a variadic
// interface parameter (fmt-style boxing).
func checkVariadicBoxing(pass *lintkit.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok || !types.IsInterface(slice.Elem()) {
		return
	}
	if len(call.Args) >= sig.Params().Len() {
		report(call.Pos(), "arguments box into a variadic interface parameter in a hotpath function")
	}
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
