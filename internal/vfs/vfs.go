// Package vfs is the injectable filesystem seam under the durability
// layer: internal/wal and internal/service route every file operation —
// open, write, fsync, rename, remove, directory listing and sync —
// through the FS interface, so tests can substitute Fault (fault.go) and
// inject partial writes, fsync errors, ENOSPC, and power-cut byte limits
// at exact operation boundaries. Production code uses OS(), a thin
// passthrough to the os package.
//
// The contract the durability layer relies on (and Fault perturbs):
//
//   - Write may persist any prefix of its bytes before failing; nothing
//     written is durable until Sync returns nil.
//   - Rename is atomic with respect to crashes, but only durable after a
//     SyncDir of the containing directory.
//   - Any operation may fail persistently (a dead disk): callers must
//     surface the failure, not retry blindly.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// File is the per-file surface the durability layer needs. It is a strict
// subset of *os.File.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer

	// Name returns the path the file was opened with.
	Name() string

	// Sync flushes the file's data to stable storage.
	Sync() error

	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem seam. Implementations: OS() (production) and
// Fault (tests).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)

	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error

	// Remove deletes a file.
	Remove(name string) error

	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)

	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)

	// MkdirAll creates a directory path.
	MkdirAll(path string, perm fs.FileMode) error

	// SyncDir fsyncs a directory, making renames and creates in it
	// durable. Best-effort on filesystems that reject directory fsync:
	// implementations return nil for that specific rejection.
	SyncDir(name string) error
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// tempSeq makes CreateTemp names unique within a process without
// consulting a clock or global RNG.
var tempSeq atomic.Uint64

// CreateTemp creates a new exclusive file in dir whose name starts with
// prefix, retrying on collisions like os.CreateTemp.
func CreateTemp(fsys FS, dir, prefix string) (File, error) {
	for range 10000 {
		name := filepath.Join(dir, prefix+strconv.FormatUint(tempSeq.Add(1), 10))
		f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
	}
	return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrExist}
}

// osFS is the production FS: a passthrough to the os package.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems reject directory fsync; treat that as best-effort
	// like the pre-seam checkpoint writer did.
	_ = d.Sync()
	return nil
}
