package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeThrough(t *testing.T, f File, data []byte) (int, error) {
	t.Helper()
	return f.Write(data)
}

func TestFaultPassthrough(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	path := filepath.Join(dir, "a")
	file, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := file.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := file.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := file.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "hello" {
		t.Fatalf("file content %q", got)
	}
	if f.Count(OpWrite) != 1 || f.Count(OpSync) != 1 {
		t.Fatalf("counts: write=%d sync=%d", f.Count(OpWrite), f.Count(OpSync))
	}
}

func TestFaultStickyAndNth(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	boom := errors.New("boom")
	file, err := f.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()

	f.FailNth(OpWrite, 1, boom) // second write fails, once
	if _, err := writeThrough(t, file, []byte("x")); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	if _, err := writeThrough(t, file, []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("write 1 = %v, want boom", err)
	}
	if _, err := writeThrough(t, file, []byte("z")); err != nil {
		t.Fatalf("write 2: %v", err)
	}

	f.FailOp(OpSync, boom)
	if err := file.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sticky sync = %v", err)
	}
	if err := file.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sticky sync stays = %v", err)
	}
	f.ClearOp(OpSync)
	if err := file.Sync(); err != nil {
		t.Fatalf("cleared sync: %v", err)
	}
}

func TestFaultPartialWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	boom := errors.New("torn")
	path := filepath.Join(dir, "a")
	file, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f.PartialWriteNth(0, 3, boom)
	n, err := file.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, boom) {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	if got, _ := os.ReadFile(path); string(got) != "abc" {
		t.Fatalf("on-disk %q, want prefix abc", got)
	}
	// The rule is one-shot.
	if _, err := file.Write([]byte("gh")); err != nil {
		t.Fatalf("next write: %v", err)
	}
}

func TestFaultWriteBudget(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	dead := errors.New("power cut")
	path := filepath.Join(dir, "a")
	file, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f.LimitWriteBytes(5, dead)
	if _, err := file.Write([]byte("abc")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := file.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, dead) {
		t.Fatalf("crossing write = %d, %v; want 2 bytes then power cut", n, err)
	}
	if _, err := file.Write([]byte("h")); !errors.Is(err, dead) {
		t.Fatalf("post-cut write = %v, want sticky failure", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "abcde" {
		t.Fatalf("on-disk %q, want exactly 5 bytes", got)
	}
	f.Reset()
	if _, err := file.Write([]byte("!")); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestFaultMatch(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	boom := errors.New("boom")
	f.Match(func(path string) bool { return strings.Contains(path, "wal") })
	f.FailOp(OpSync, boom)

	walFile, err := f.OpenFile(filepath.Join(dir, "wal-1.seg"), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer walFile.Close()
	other, err := f.OpenFile(filepath.Join(dir, "x.ckpt"), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	if err := walFile.Sync(); !errors.Is(err, boom) {
		t.Fatalf("matched sync = %v", err)
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("unmatched sync = %v", err)
	}
	if f.Count(OpSync) != 1 {
		t.Fatalf("unmatched op counted: %d", f.Count(OpSync))
	}
}

func TestCreateTempUnique(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	a, err := CreateTemp(fsys, dir, ".ckpt-")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := CreateTemp(fsys, dir, ".ckpt-")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Name() == b.Name() {
		t.Fatalf("duplicate temp name %s", a.Name())
	}
	for _, f := range []File{a, b} {
		base := filepath.Base(f.Name())
		if !strings.HasPrefix(base, ".ckpt-") {
			t.Fatalf("temp name %s lacks prefix", base)
		}
	}
}
