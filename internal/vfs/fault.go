package vfs

import (
	"io/fs"
	"sync"
)

// Op names one filesystem operation class for fault injection.
type Op uint8

// Operation classes. OpWrite additionally supports partial-write and
// byte-budget rules (see PartialWriteNth, LimitWriteBytes).
const (
	OpOpenFile Op = iota
	OpRead
	OpWrite
	OpSeek
	OpSync
	OpClose
	OpTruncate
	OpRename
	OpRemove
	OpReadDir
	OpStat
	OpMkdirAll
	OpSyncDir
	opCount
)

func (o Op) String() string {
	names := [...]string{"openfile", "read", "write", "seek", "sync", "close",
		"truncate", "rename", "remove", "readdir", "stat", "mkdirall", "syncdir"}
	if int(o) < len(names) {
		return names[o]
	}
	return "invalid"
}

// Fault wraps an FS and injects failures at scripted operation
// boundaries. All rules count only operations whose path matches the
// Match predicate (default: everything), so a test can target the WAL
// directory while checkpoints proceed, or vice versa. Safe for
// concurrent use — the service's ingest workers and background retry
// loop hit the same Fault.
type Fault struct {
	base FS

	mu     sync.Mutex
	match  func(string) bool //distlint:guarded-by mu
	counts [opCount]int      //distlint:guarded-by mu
	sticky [opCount]error    //distlint:guarded-by mu
	nth    map[Op]map[int]error

	// partial: the n-th matching write persists only keep bytes, then
	// returns err — a torn write.
	partial struct {
		armed   bool
		n, keep int
		err     error
	}

	// budget: matching writes persist bytes until the cumulative budget
	// runs out; the write that crosses it is torn at the boundary, errors,
	// and arms a sticky write failure — a power cut at an exact byte
	// offset followed by a dead disk.
	budget struct {
		armed     bool
		remaining int64
		err       error
	}
}

// NewFault wraps base with no rules armed: every operation passes
// through until a Fail*/Partial*/Limit* call scripts a failure.
func NewFault(base FS) *Fault {
	return &Fault{base: base, nth: make(map[Op]map[int]error)}
}

// Match restricts every rule and counter to paths the predicate accepts.
// Renames match on either path.
func (f *Fault) Match(pred func(path string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.match = pred
}

// FailOp makes every subsequent matching op of this class fail with err —
// a persistently dead disk. ClearOp re-arms it.
func (f *Fault) FailOp(op Op, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sticky[op] = err
}

// ClearOp removes a sticky FailOp failure.
func (f *Fault) ClearOp(op Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sticky[op] = nil
}

// FailNth makes the n-th matching op of this class (0-based, counted from
// the Fault's construction or last Reset) fail with err.
func (f *Fault) FailNth(op Op, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.nth[op]
	if m == nil {
		m = make(map[int]error)
		f.nth[op] = m
	}
	m[n] = err
}

// PartialWriteNth tears the n-th matching write: only the first keep
// bytes reach the file, and the write returns err.
func (f *Fault) PartialWriteNth(n, keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partial.armed, f.partial.n, f.partial.keep, f.partial.err = true, n, keep, err
}

// LimitWriteBytes gives matching writes a cumulative byte budget: the
// write that crosses it is torn at the exact boundary and returns err,
// and every later write fails with err too — a power cut at byte offset
// total. Reset or ClearOp(OpWrite) heals the disk.
func (f *Fault) LimitWriteBytes(total int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget.armed, f.budget.remaining, f.budget.err = true, total, err
}

// Reset drops every rule and zeroes the counters; the wrapped FS is
// healthy again.
func (f *Fault) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts = [opCount]int{}
	f.sticky = [opCount]error{}
	f.nth = make(map[Op]map[int]error)
	f.partial.armed = false
	f.budget.armed = false
}

// Count reports how many matching operations of this class have run.
func (f *Fault) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

func (f *Fault) matchesLocked(path string) bool {
	return f.match == nil || f.match(path)
}

// gate counts one matching op and returns the scripted failure, if any.
func (f *Fault) gate(op Op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.matchesLocked(path) {
		return nil
	}
	idx := f.counts[op]
	f.counts[op]++
	if err := f.sticky[op]; err != nil {
		return err
	}
	if m := f.nth[op]; m != nil {
		if err, ok := m[idx]; ok {
			delete(m, idx)
			return err
		}
	}
	return nil
}

// writeGate counts one matching write of n bytes and returns how many of
// them may reach the file plus the scripted failure, if any.
func (f *Fault) writeGate(path string, n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.matchesLocked(path) {
		return n, nil
	}
	idx := f.counts[OpWrite]
	f.counts[OpWrite]++
	if err := f.sticky[OpWrite]; err != nil {
		return 0, err
	}
	if m := f.nth[OpWrite]; m != nil {
		if err, ok := m[idx]; ok {
			delete(m, idx)
			return 0, err
		}
	}
	if f.partial.armed && idx == f.partial.n {
		f.partial.armed = false
		return min(f.partial.keep, n), f.partial.err
	}
	if f.budget.armed {
		if f.budget.remaining >= int64(n) {
			f.budget.remaining -= int64(n)
			return n, nil
		}
		keep := int(f.budget.remaining)
		f.budget.remaining = 0
		f.budget.armed = false
		f.sticky[OpWrite] = f.budget.err
		return keep, f.budget.err
	}
	return n, nil
}

func (f *Fault) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.gate(OpOpenFile, name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, f: f, name: name}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	matches := f.matchesLocked(oldpath) || f.matchesLocked(newpath)
	f.mu.Unlock()
	if matches {
		if err := f.gate(OpRename, oldpath); err != nil {
			return err
		}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if err := f.gate(OpRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.gate(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *Fault) Stat(name string) (fs.FileInfo, error) {
	if err := f.gate(OpStat, name); err != nil {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.gate(OpMkdirAll, path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *Fault) SyncDir(name string) error {
	if err := f.gate(OpSyncDir, name); err != nil {
		return err
	}
	return f.base.SyncDir(name)
}

// faultFile routes per-file operations back through the Fault's gates.
type faultFile struct {
	File
	f    *Fault
	name string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.f.gate(OpRead, ff.name); err != nil {
		return 0, err
	}
	return ff.File.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allow, injected := ff.f.writeGate(ff.name, len(p))
	if injected == nil {
		return ff.File.Write(p)
	}
	n := 0
	if allow > 0 {
		var err error
		n, err = ff.File.Write(p[:allow])
		if err != nil {
			return n, err
		}
	}
	return n, injected
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := ff.f.gate(OpSeek, ff.name); err != nil {
		return 0, err
	}
	return ff.File.Seek(offset, whence)
}

func (ff *faultFile) Sync() error {
	if err := ff.f.gate(OpSync, ff.name); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.f.gate(OpTruncate, ff.name); err != nil {
		return err
	}
	return ff.File.Truncate(size)
}

func (ff *faultFile) Close() error {
	if err := ff.f.gate(OpClose, ff.name); err != nil {
		ff.File.Close() // release the descriptor even when injecting
		return err
	}
	return ff.File.Close()
}
