// Package wire is the binary transport layer for multi-node deployments:
// the length-prefixed frame codec plus the persistent-connection pair —
// SiteConn (site side) and CoordListener (coordinator side) — that
// cmd/distsite and cmd/distserve speak to each other.
//
// # Frames
//
// Every frame is a fixed 12-byte header followed by a payload:
//
//	magic   uint16  0x5744 ("WD")
//	version uint8   1
//	kind    uint8   hello / hello-ack / row-block / ack / msg-block / error
//	length  uint32  payload bytes
//	crc     uint32  IEEE CRC-32 of the payload
//
// All integers are little-endian. Row-block payloads carry float64 rows
// bit-for-bit (math.Float64bits), so a decoded block is numerically
// identical to the encoded one; the decoder reads payloads into pooled
// buffers and returns views, so the steady-state decode path allocates
// nothing (//distlint:hotpath on both block codecs).
//
// # Sessions, backpressure, and resume
//
// A SiteConn dials the coordinator, registers with a Hello frame naming
// its tracker and site id, and streams numbered row blocks. The
// coordinator acks applied blocks with two cumulative watermarks:
//
//   - applied: every block with seq ≤ applied has been ingested into
//     tracker state. The site's in-flight window (SendBlock backpressure)
//     is bounded against this watermark.
//   - durable: every block with seq ≤ durable is captured by a
//     coordinator checkpoint. The site retains blocks above this
//     watermark and retransmits them after a coordinator restart, giving
//     at-least-once delivery with exactly-once application: the
//     coordinator drops any seq at or below its applied watermark, and a
//     restored coordinator resumes from the checkpoint the durable
//     watermark describes.
//
// On a connection failure the SiteConn reconnects with exponential
// backoff, re-handshakes, and retransmits every retained block above the
// coordinator's applied watermark. Per-site blocks are applied in
// sequence order; a gap (seq beyond applied+1) is a protocol error that
// drops the connection, and the retransmit handshake heals it.
//
// The msg-block frame carries batched protocol messages for the
// internal/node runtime, whose TCP transport runs on this codec (block
// frames end to end instead of one gob message per row).
package wire

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Codec and session errors, matched with errors.Is.
var (
	// ErrBadMagic reports a frame header that does not start with the
	// protocol magic — the peer is not speaking this protocol.
	ErrBadMagic = errors.New("wire: bad magic")

	// ErrVersion reports a frame from an incompatible protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")

	// ErrChecksum reports a payload whose CRC does not match its header.
	ErrChecksum = errors.New("wire: payload checksum mismatch")

	// ErrFrameTooLarge reports a header announcing a payload beyond
	// MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

	// ErrMalformed reports a structurally invalid payload.
	ErrMalformed = errors.New("wire: malformed payload")

	// ErrClosed reports an operation on a closed connection or listener.
	ErrClosed = errors.New("wire: closed")

	// ErrRejected wraps a coordinator error frame: the remote refused the
	// session (unknown tracker, bad site) during the handshake.
	ErrRejected = errors.New("wire: rejected by coordinator")
)

// Stats counts frames and payload-carrying bytes through one endpoint's
// encoders and decoders, plus the SiteConn session counters. All fields
// are atomic; read them at any time.
type Stats struct {
	FramesOut atomic.Int64 // frames encoded
	BytesOut  atomic.Int64 // bytes written, headers included
	FramesIn  atomic.Int64 // frames decoded
	BytesIn   atomic.Int64 // bytes read, headers included

	Connects    atomic.Int64 // successful dial+handshake rounds
	DialErrors  atomic.Int64 // failed dial/handshake attempts
	Retransmits atomic.Int64 // blocks re-sent after a reconnect
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		FramesOut:   s.FramesOut.Load(),
		BytesOut:    s.BytesOut.Load(),
		FramesIn:    s.FramesIn.Load(),
		BytesIn:     s.BytesIn.Load(),
		Connects:    s.Connects.Load(),
		DialErrors:  s.DialErrors.Load(),
		Retransmits: s.Retransmits.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	FramesOut   int64 `json:"frames_out"`
	BytesOut    int64 `json:"bytes_out"`
	FramesIn    int64 `json:"frames_in"`
	BytesIn     int64 `json:"bytes_in"`
	Connects    int64 `json:"connects"`
	DialErrors  int64 `json:"dial_errors"`
	Retransmits int64 `json:"retransmits"`
}

func malformedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}
