package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// SiteConfig configures a SiteConn.
type SiteConfig struct {
	// Addr is the coordinator's wire listen address (host:port).
	Addr string
	// Site is this connection's site id.
	Site int
	// Tracker names the coordinator tracker this site feeds.
	Tracker string

	// Window bounds blocks in flight: SendBlock waits once
	// lastSeq − applied reaches it (default 32). This is the
	// backpressure coupling — a slow or partitioned coordinator stalls
	// the feeder instead of buffering unboundedly.
	Window int

	// Retain bounds blocks held for retransmit above the durable
	// watermark (default 4096). SendBlock waits when full; coordinator
	// checkpoints advance durable and drain it.
	Retain int

	// DialTimeout bounds one dial+handshake attempt (default 5s).
	DialTimeout time.Duration
	// MinBackoff and MaxBackoff bound the exponential reconnect backoff
	// (defaults 50ms and 5s).
	MinBackoff time.Duration
	MaxBackoff time.Duration

	// Logf, when set, receives connection lifecycle lines. Default: silent.
	Logf func(format string, args ...any)
}

func (c SiteConfig) withDefaults() SiteConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Retain <= 0 {
		c.Retain = 4096
	}
	if c.Retain < c.Window {
		c.Retain = c.Window
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// pblock is one retained block: flat row-major storage (the retransmit
// encoder reads it without reshaping).
type pblock struct {
	seq  uint64
	flat []float64
}

// SiteConn is the site end of a coordinator stream: a persistent
// connection with a bounded in-flight window, exponential-backoff
// reconnect, and at-least-once resume from the coordinator's acked
// watermarks. SendBlock may be called from one goroutine; the other
// methods are safe from any.
type SiteConn struct {
	cfg   SiteConfig
	stats Stats

	mu   sync.Mutex
	cond *sync.Cond
	// pending retains blocks above the durable watermark, ascending seq.
	//distlint:guarded-by mu
	pending []pblock
	//distlint:guarded-by mu
	sendIdx int // next pending index the writer transmits
	//distlint:guarded-by mu
	lastSeq uint64 // last assigned block seq
	//distlint:guarded-by mu
	sentSeq uint64 // highest seq ever transmitted (retransmit accounting)
	//distlint:guarded-by mu
	applied uint64 // coordinator's applied watermark (monotone max)
	//distlint:guarded-by mu
	durable uint64 // coordinator's durable watermark (monotone max)
	//distlint:guarded-by mu
	dim int // row dimension, fixed by the first block
	//distlint:guarded-by mu
	conn net.Conn // live connection, nil while down
	//distlint:guarded-by mu
	ready bool // first handshake done; seq space adopted
	//distlint:guarded-by mu
	err error // terminal error (coordinator rejected the session)
	//distlint:guarded-by mu
	closed bool

	closedCh   chan struct{}
	manageDone chan struct{}
}

// Dial starts a site connection. It returns immediately; the connection
// is established (and re-established) in the background, and SendBlock
// waits for the first successful handshake before assigning sequence
// numbers. Close releases it.
func Dial(cfg SiteConfig) (*SiteConn, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, fmt.Errorf("wire: empty coordinator address")
	}
	if cfg.Site < 0 {
		return nil, fmt.Errorf("wire: negative site id %d", cfg.Site)
	}
	c := &SiteConn{
		cfg:        cfg,
		closedCh:   make(chan struct{}),
		manageDone: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.manage()
	return c, nil
}

// Stats exposes the connection's traffic and session counters.
func (c *SiteConn) Stats() *Stats { return &c.stats }

// Err returns the terminal error, if any: a coordinator handshake
// rejection (wrapped ErrRejected). Transient connection failures are
// retried, not reported here.
func (c *SiteConn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Watermarks returns the coordinator's acked (applied, durable)
// watermarks as last seen, and the last assigned block sequence.
func (c *SiteConn) Watermarks() (applied, durable, lastSeq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied, c.durable, c.lastSeq
}

// SendBlock queues one block of rows for delivery. It waits while the
// in-flight window or the retransmit retention is full (backpressure),
// or until the first handshake completes; it does not wait for this
// block's ack — use Drain for an end-of-stream barrier. Rows are copied,
// so the caller may reuse them. All rows must share the dimension of the
// first block sent.
func (c *SiteConn) SendBlock(rows [][]float64) error {
	if len(rows) == 0 {
		return nil
	}
	dim := len(rows[0])
	if dim == 0 {
		return malformedf("empty row")
	}
	for i, r := range rows {
		if len(r) != dim {
			return malformedf("row %d has %d entries, block dimension is %d", i, len(r), dim)
		}
	}

	c.mu.Lock()
	if c.dim == 0 {
		c.dim = dim
	}
	if dim != c.dim {
		want := c.dim
		c.mu.Unlock()
		return malformedf("block dimension %d, stream dimension %d", dim, want)
	}
	for !c.closed && c.err == nil &&
		(!c.ready || c.lastSeq-c.applied >= uint64(c.cfg.Window) || len(c.pending) >= c.cfg.Retain) {
		c.cond.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	flat := make([]float64, 0, len(rows)*dim)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	c.lastSeq++
	c.pending = append(c.pending, pblock{seq: c.lastSeq, flat: flat})
	c.cond.Broadcast() // wake the writer
	c.mu.Unlock()
	return nil
}

// Drain waits until every queued block has been acked as applied (or ctx
// expires, the connection closes, or the session fails terminally).
func (c *SiteConn) Drain(ctx context.Context) error {
	return c.waitWatermark(ctx, false)
}

// DrainDurable waits until every queued block is covered by a
// coordinator checkpoint — after it returns, this process can exit and a
// coordinator restart still restores the full stream.
func (c *SiteConn) DrainDurable(ctx context.Context) error {
	return c.waitWatermark(ctx, true)
}

// durableProbeInterval paces DrainDurable's watermark probes: how often
// a fully-applied stream re-asks the coordinator whether a checkpoint
// has covered it yet.
const durableProbeInterval = 100 * time.Millisecond

// waitWatermark blocks until the chosen watermark reaches lastSeq.
func (c *SiteConn) waitWatermark(ctx context.Context, durable bool) error {
	stop := context.AfterFunc(ctx, func() { c.cond.Broadcast() })
	defer stop()
	if durable {
		// Acks only flow in response to blocks, so once the last block is
		// applied nothing would ever report the durable watermark
		// advancing. Probe for it while this wait is live.
		stopc := make(chan struct{})
		defer close(stopc)
		//distlint:lifecycle probeDurable exits when stopc closes below.
		go c.probeDurable(stopc)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.err != nil {
			return c.err
		}
		mark := c.applied
		if durable {
			mark = c.durable
		}
		if mark >= c.lastSeq {
			return nil
		}
		if c.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		c.cond.Wait()
	}
}

// Close tears the connection down. Queued-but-unacked blocks are
// abandoned — Drain first for a graceful end of stream. Idempotent.
func (c *SiteConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	close(c.closedCh)
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-c.manageDone
	return nil
}

// manage owns the connection lifecycle: dial + handshake with
// exponential backoff, epoch installation (watermark adoption and the
// retransmit cursor), a writer goroutine per epoch, and the inline ack
// read loop. It exits on Close or a terminal handshake rejection.
func (c *SiteConn) manage() {
	defer close(c.manageDone)
	backoff := c.cfg.MinBackoff
	for {
		select {
		case <-c.closedCh:
			return
		default:
		}
		conn, dec, hs, err := c.connect()
		if err != nil {
			c.stats.DialErrors.Add(1)
			if c.terminal(err) {
				return
			}
			c.cfg.Logf("wire: site %d: %v (retrying in %v)", c.cfg.Site, err, backoff)
			if !c.sleep(backoff) {
				return
			}
			backoff *= 2
			if backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
			continue
		}
		backoff = c.cfg.MinBackoff
		c.stats.Connects.Add(1)

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.advanceLocked(hs.Applied, hs.Durable)
		if !c.ready && len(c.pending) == 0 {
			// Fresh sender: adopt the coordinator's sequence space so a
			// restarted site continues the stream instead of colliding
			// with already-applied sequence numbers.
			c.lastSeq = hs.Applied
			c.sentSeq = hs.Applied
		}
		// Position the retransmit cursor at the first block the
		// coordinator has not applied; everything from there is (re)sent.
		c.sendIdx = 0
		retrans := 0
		for c.sendIdx < len(c.pending) && c.pending[c.sendIdx].seq <= hs.Applied {
			c.sendIdx++
		}
		for i := c.sendIdx; i < len(c.pending); i++ {
			if c.pending[i].seq <= c.sentSeq {
				retrans++
			}
		}
		c.conn = conn
		c.ready = true
		c.cond.Broadcast()
		c.mu.Unlock()
		if retrans > 0 {
			c.stats.Retransmits.Add(int64(retrans))
			c.cfg.Logf("wire: site %d: reconnected, retransmitting %d blocks above seq %d",
				c.cfg.Site, retrans, hs.Applied)
		}

		writerDone := make(chan struct{})
		go c.writeLoop(conn, writerDone)
		c.readAcks(dec)

		conn.Close()
		c.mu.Lock()
		c.conn = nil
		c.cond.Broadcast()
		c.mu.Unlock()
		<-writerDone
		select {
		case <-c.closedCh:
			return
		default:
		}
	}
}

// connect runs one dial + handshake attempt.
func (c *SiteConn) connect() (net.Conn, *Decoder, HelloAck, error) {
	var hs HelloAck
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, nil, hs, fmt.Errorf("wire: dial %s: %w", c.cfg.Addr, err)
	}
	deadline := time.Now().Add(c.cfg.DialTimeout)
	_ = conn.SetDeadline(deadline)
	enc := NewEncoder(conn, &c.stats)
	if err := enc.Hello(Hello{Site: c.cfg.Site, Tracker: c.cfg.Tracker}); err != nil {
		conn.Close()
		return nil, nil, hs, err
	}
	dec := NewDecoder(bufio.NewReader(conn), &c.stats)
	f, err := dec.Next()
	if err != nil {
		conn.Close()
		return nil, nil, hs, fmt.Errorf("wire: handshake: %w", err)
	}
	switch f.Kind {
	case KindHelloAck:
		hs = f.HelloAck
	case KindError:
		conn.Close()
		return nil, nil, hs, fmt.Errorf("%w: %s", ErrRejected, f.ErrMsg)
	default:
		conn.Close()
		return nil, nil, hs, malformedf("handshake answered with %v frame", f.Kind)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, dec, hs, nil
}

// terminal records a handshake rejection as the session's final state.
// Other errors are transient and retried.
func (c *SiteConn) terminal(err error) bool {
	if !errors.Is(err, ErrRejected) {
		return false
	}
	c.mu.Lock()
	c.err = err
	c.cond.Broadcast()
	c.mu.Unlock()
	c.cfg.Logf("wire: site %d: %v (terminal)", c.cfg.Site, err)
	return true
}

// writeLoop transmits pending blocks from the retransmit cursor onward,
// one epoch: it exits when the connection is torn down or the SiteConn
// closes. The single-writer design keeps frames whole without a write
// lock: handshake frames are written before this goroutine starts, and
// every later frame on the connection is written here.
func (c *SiteConn) writeLoop(conn net.Conn, done chan struct{}) {
	defer close(done)
	enc := NewEncoder(conn, &c.stats)
	for {
		c.mu.Lock()
		for c.conn == conn && !c.closed && c.sendIdx >= len(c.pending) {
			c.cond.Wait()
		}
		if c.conn != conn || c.closed {
			c.mu.Unlock()
			return
		}
		b := c.pending[c.sendIdx]
		c.sendIdx++
		if b.seq > c.sentSeq {
			c.sentSeq = b.seq
		}
		dim := c.dim
		c.mu.Unlock()
		if err := enc.RowBlockFlat(b.seq, c.cfg.Site, dim, b.flat); err != nil {
			// Tear the epoch down; manage's read loop unblocks on the
			// closed connection and reconnects.
			conn.Close()
			return
		}
	}
}

// readAcks consumes coordinator frames until the connection breaks,
// advancing the watermarks and waking senders.
func (c *SiteConn) readAcks(dec *Decoder) {
	for {
		f, err := dec.Next()
		if err != nil {
			return
		}
		switch f.Kind {
		case KindAck:
			c.mu.Lock()
			c.advanceLocked(f.Ack.Applied, f.Ack.Durable)
			c.mu.Unlock()
		case KindError:
			// Mid-stream protocol error (e.g. a sequence gap after frame
			// loss): drop the connection; the reconnect handshake heals
			// the stream from the coordinator's watermark.
			c.cfg.Logf("wire: site %d: coordinator error: %s", c.cfg.Site, f.ErrMsg)
			return
		default:
			c.cfg.Logf("wire: site %d: unexpected %v frame", c.cfg.Site, f.Kind)
			return
		}
	}
}

// advanceLocked folds newly acked watermarks in (monotone max), prunes
// durable blocks from the retention buffer, and wakes waiters.
//
//distlint:caller-holds mu
func (c *SiteConn) advanceLocked(applied, durable uint64) {
	if applied > c.applied {
		c.applied = applied
	}
	if durable > c.durable {
		c.durable = durable
	}
	drop := 0
	for drop < len(c.pending) && c.pending[drop].seq <= c.durable {
		drop++
	}
	if drop > 0 {
		rest := copy(c.pending, c.pending[drop:])
		clear(c.pending[rest:]) // release retained row storage
		c.pending = c.pending[:rest]
		c.sendIdx -= drop
		if c.sendIdx < 0 {
			c.sendIdx = 0
		}
	}
	c.cond.Broadcast()
}

// probeDurable periodically re-sends the newest retained block while a
// DrainDurable waits and the stream is otherwise idle (every queued
// block sent and applied, but not yet checkpoint-covered). The
// coordinator drops the duplicate and its ack carries the current
// watermarks — the only way an idle stream learns a checkpoint landed.
func (c *SiteConn) probeDurable(stopc chan struct{}) {
	t := time.NewTicker(durableProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-c.closedCh:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.ready && c.conn != nil &&
			len(c.pending) > 0 && c.sendIdx == len(c.pending) &&
			c.applied >= c.pending[len(c.pending)-1].seq {
			c.sendIdx-- // writeLoop re-sends the last block as the probe
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// sleep waits for d or until Close, reporting whether the connection is
// still open.
func (c *SiteConn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closedCh:
		return false
	}
}
