package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"testing"
)

func randRows(rng *rand.Rand, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

// TestCodecRoundTrip drives every frame kind through an encode/decode
// cycle and requires bit-identical payloads.
func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var stats Stats
	enc := NewEncoder(&buf, &stats)
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 17, 5)

	if err := enc.Hello(Hello{Site: 3, Tracker: "sensor-grid"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.HelloAck(HelloAck{Applied: 42, Durable: 17}); err != nil {
		t.Fatal(err)
	}
	if err := enc.RowBlock(9, 3, 5, rows); err != nil {
		t.Fatal(err)
	}
	if err := enc.Ack(Ack{Applied: 9, Durable: 5}); err != nil {
		t.Fatal(err)
	}
	msgs := []Msg{
		{Kind: 0, Site: 1, Value: 3.25},
		{Kind: 2, Site: 0, Vec: []float64{1, -2.5, math.Pi}},
		{Kind: 1, Site: 4, Elem: 77, Value: -0.125},
	}
	if err := enc.MsgBlock(msgs); err != nil {
		t.Fatal(err)
	}
	if err := enc.Error("tracker not found"); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf, &stats)
	f, err := dec.Next()
	if err != nil || f.Kind != KindHello {
		t.Fatalf("hello: %v %v", f, err)
	}
	if f.Hello.Site != 3 || f.Hello.Tracker != "sensor-grid" {
		t.Fatalf("hello payload %+v", f.Hello)
	}
	f, err = dec.Next()
	if err != nil || f.Kind != KindHelloAck || f.HelloAck != (HelloAck{Applied: 42, Durable: 17}) {
		t.Fatalf("hello-ack: %+v %v", f, err)
	}
	f, err = dec.Next()
	if err != nil || f.Kind != KindRowBlock {
		t.Fatalf("row-block: %v", err)
	}
	if f.Block.Seq != 9 || f.Block.Site != 3 || f.Block.Dim != 5 || len(f.Block.Rows) != len(rows) {
		t.Fatalf("row-block header %+v", f.Block)
	}
	for i, row := range rows {
		for j, v := range row {
			if got := f.Block.Rows[i][j]; math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("row %d[%d]: %v != %v", i, j, got, v)
			}
		}
	}
	f, err = dec.Next()
	if err != nil || f.Kind != KindAck || f.Ack != (Ack{Applied: 9, Durable: 5}) {
		t.Fatalf("ack: %+v %v", f, err)
	}
	f, err = dec.Next()
	if err != nil || f.Kind != KindMsgBlock || len(f.Msgs) != len(msgs) {
		t.Fatalf("msg-block: %+v %v", f, err)
	}
	for i, want := range msgs {
		got := f.Msgs[i]
		if got.Kind != want.Kind || got.Site != want.Site || got.Elem != want.Elem ||
			math.Float64bits(got.Value) != math.Float64bits(want.Value) || len(got.Vec) != len(want.Vec) {
			t.Fatalf("msg %d: %+v != %+v", i, got, want)
		}
		for j, v := range want.Vec {
			if math.Float64bits(got.Vec[j]) != math.Float64bits(v) {
				t.Fatalf("msg %d vec[%d]: %v != %v", i, j, got.Vec[j], v)
			}
		}
	}
	f, err = dec.Next()
	if err != nil || f.Kind != KindError || f.ErrMsg != "tracker not found" {
		t.Fatalf("error frame: %+v %v", f, err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}

	if stats.FramesOut.Load() != 6 || stats.FramesIn.Load() != 6 {
		t.Fatalf("frame counts %d out / %d in", stats.FramesOut.Load(), stats.FramesIn.Load())
	}
	if stats.BytesOut.Load() != stats.BytesIn.Load() || stats.BytesOut.Load() == 0 {
		t.Fatalf("byte counts %d out / %d in", stats.BytesOut.Load(), stats.BytesIn.Load())
	}
}

// TestCodecFlatMatchesRows: the retransmit encoder (flat storage) emits
// byte-identical frames to the [][]float64 encoder.
func TestCodecFlatMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := randRows(rng, 8, 6)
	flat := make([]float64, 0, 48)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	var a, b bytes.Buffer
	if err := NewEncoder(&a, nil).RowBlock(5, 2, 6, rows); err != nil {
		t.Fatal(err)
	}
	if err := NewEncoder(&b, nil).RowBlockFlat(5, 2, 6, flat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("flat and row encoders disagree")
	}
}

// TestCodecCorruption: bit flips in the payload are caught by the CRC,
// wrong magic and versions are refused, and truncated frames error.
func TestCodecCorruption(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	if err := enc.RowBlock(1, 0, 2, [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)

	flipped := append([]byte(nil), frame...)
	flipped[HeaderSize+10] ^= 0x40
	if _, err := NewDecoder(bytes.NewReader(flipped), nil).Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped payload bit: %v", err)
	}

	badMagic := append([]byte(nil), frame...)
	badMagic[0] = 'X'
	if _, err := NewDecoder(bytes.NewReader(badMagic), nil).Next(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}

	badVer := append([]byte(nil), frame...)
	badVer[2] = 99
	if _, err := NewDecoder(bytes.NewReader(badVer), nil).Next(); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}

	if _, err := NewDecoder(bytes.NewReader(frame[:len(frame)-3]), nil).Next(); err == nil {
		t.Fatal("truncated frame decoded")
	}

	huge := append([]byte(nil), frame...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewDecoder(bytes.NewReader(huge), nil).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
}

// TestCodecMalformedPayloads: structurally invalid payloads behind valid
// CRCs are rejected, not mis-decoded.
func TestCodecMalformedPayloads(t *testing.T) {
	// A row-block whose rows×dim disagrees with the payload length.
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	if err := enc.RowBlock(1, 0, 2, [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)
	// Claim 3 rows in the header (offset 12..16 of the payload), re-CRC.
	p := frame[HeaderSize:]
	p[12] = 3
	reCRC(frame)
	if _, err := NewDecoder(bytes.NewReader(frame), nil).Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("row count lie: %v", err)
	}

	// A hello whose name length overruns the payload.
	buf.Reset()
	if err := enc.Hello(Hello{Site: 0, Tracker: "t"}); err != nil {
		t.Fatal(err)
	}
	frame = append([]byte(nil), buf.Bytes()...)
	frame[HeaderSize+8] = 200
	reCRC(frame)
	if _, err := NewDecoder(bytes.NewReader(frame), nil).Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("hello name overrun: %v", err)
	}
}

// reCRC recomputes a staged frame's payload checksum after test tampering.
func reCRC(frame []byte) {
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(frame[HeaderSize:]))
}

// TestDecoderSteadyStateAllocs: after the pools warm up, decoding row
// blocks allocates nothing.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randRows(rng, 64, 16)
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	for i := 0; i < 12; i++ {
		if err := enc.RowBlock(uint64(i+1), 0, 16, rows); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	dec := NewDecoder(bytes.NewReader(stream[:2*len(stream)/12]), nil)
	for {
		if _, err := dec.Next(); err != nil {
			break
		}
	}
	rest := bytes.NewReader(stream[2*len(stream)/12:])
	dec.r = rest
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := dec.Next(); err != nil {
			rest.Seek(0, io.SeekStart)
			if _, err := dec.Next(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("decoder allocates %.1f per block in steady state", allocs)
	}
}

// TestEncoderSteadyStateAllocs: the encoder's staging buffer pools too.
func TestEncoderSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows := randRows(rng, 64, 16)
	enc := NewEncoder(io.Discard, nil)
	if err := enc.RowBlock(1, 0, 16, rows); err != nil {
		t.Fatal(err)
	}
	seq := uint64(1)
	allocs := testing.AllocsPerRun(10, func() {
		seq++
		if err := enc.RowBlock(seq, 0, 16, rows); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encoder allocates %.1f per block in steady state", allocs)
	}
}
