package wire

// Frame kinds and payload layouts. The codec (codec.go) is the single
// reader/writer of these layouts; this file is the spec.

// Protocol constants.
const (
	// Magic opens every frame header.
	Magic uint16 = 0x5744 // "WD" little-endian

	// Version is the protocol version this package speaks. A decoder
	// rejects frames from any other version — resume semantics depend on
	// both ends agreeing on watermark meaning, so there is no negotiation,
	// only refusal.
	Version uint8 = 1

	// HeaderSize is the fixed frame header length:
	// magic(2) version(1) kind(1) length(4) crc(4).
	HeaderSize = 12

	// MaxPayload bounds a single frame's payload (64 MiB, comfortably
	// above the service layer's HTTP body bound for the same blocks).
	MaxPayload = 64 << 20
)

// Kind discriminates frames.
type Kind uint8

// Frame kinds.
const (
	// KindInvalid is the zero Kind; never valid on the wire.
	KindInvalid Kind = iota

	// KindHello is the first frame on every connection, site → coordinator:
	// site id, flags, and the target tracker name.
	KindHello

	// KindHelloAck answers a hello, coordinator → site: the applied and
	// durable watermarks the site resumes from.
	KindHelloAck

	// KindRowBlock is a numbered block of float64 rows, site → coordinator.
	KindRowBlock

	// KindAck acknowledges row blocks cumulatively, coordinator → site:
	// the applied and durable watermarks after an ingest.
	KindAck

	// KindMsgBlock is a batch of node-runtime protocol messages, either
	// direction (the internal/node TCP transport's frame).
	KindMsgBlock

	// KindError carries a terminal error string, coordinator → site, and
	// closes the connection.
	KindError
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloAck:
		return "hello-ack"
	case KindRowBlock:
		return "row-block"
	case KindAck:
		return "ack"
	case KindMsgBlock:
		return "msg-block"
	case KindError:
		return "error"
	default:
		return "invalid"
	}
}

// Hello is the registration payload: which tracker this connection feeds
// and which site it speaks for. Flags is reserved (always 0 today) so the
// handshake can grow without a version bump.
//
// Payload: site uint32 | flags uint32 | nameLen uint16 | name bytes.
type Hello struct {
	Site    int
	Flags   uint32
	Tracker string
}

// HelloAck carries the coordinator's watermarks for the (tracker, site)
// stream at handshake; Ack carries the same pair after each ingest.
//
// Payload: applied uint64 | durable uint64.
type HelloAck struct {
	Applied uint64 // every seq ≤ Applied is ingested
	Durable uint64 // every seq ≤ Durable is checkpointed
}

// Ack is the cumulative acknowledgement after an applied row block.
// Same payload layout as HelloAck.
type Ack struct {
	Applied uint64
	Durable uint64
}

// RowBlock is a numbered block of rows from one site. Decoded Rows are
// views into the decoder's pooled buffers, valid until its next Next call.
//
// Payload: seq uint64 | site uint32 | rows uint32 | dim uint32 |
// rows×dim float64 bits.
type RowBlock struct {
	Seq  uint64
	Site int
	Dim  int
	Rows [][]float64
}

// Msg is one node-runtime protocol message in a KindMsgBlock frame — the
// wire form of internal/node's Message, defined here so the codec does
// not import the runtime. A decoded Vec is a view into the decoder's
// pooled buffers, valid until its next Next call.
//
// Record layout: kind uint8 | site uint32 | elem uint64 | value float64 |
// vecLen uint32 | vecLen float64 bits.
type Msg struct {
	Kind  uint8
	Site  int
	Elem  uint64
	Value float64
	Vec   []float64
}

// Frame is one decoded frame: Kind selects which field is meaningful.
// Slice-carrying fields (Block.Rows, Msgs[i].Vec) are views into the
// decoder's pooled buffers, valid until the next Next call.
type Frame struct {
	Kind     Kind
	Hello    Hello
	HelloAck HelloAck
	Ack      Ack
	Block    RowBlock
	Msgs     []Msg
	ErrMsg   string
}

// Fixed payload offsets and sizes.
const (
	rowBlockHeadSize = 8 + 4 + 4 + 4 // seq, site, rows, dim
	ackSize          = 8 + 8
	msgHeadSize      = 1 + 4 + 8 + 8 + 4 // kind, site, elem, value, vecLen
)
