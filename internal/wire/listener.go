package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler is the coordinator-side sink a CoordListener feeds. Both
// methods return the stream's cumulative watermarks; an error turns into
// an Error frame and drops the connection (the site reconnects and
// resumes from the watermarks it was last acked).
//
// Calls for one connection are sequential; calls across connections are
// concurrent, so implementations synchronize their own state.
type Handler interface {
	// Hello opens (or resumes) the (tracker, site) stream and returns
	// the watermarks the site should resume from.
	Hello(tracker string, site int) (applied, durable uint64, err error)

	// RowBlock applies one numbered block. Implementations must drop
	// seq ≤ applied as a duplicate (returning current watermarks) and
	// reject gaps (seq > applied+1) with an error.
	RowBlock(tracker string, site int, seq uint64, rows [][]float64) (applied, durable uint64, err error)
}

// helloTimeout bounds how long an accepted connection may sit silent
// before its handshake; it keeps port scanners from pinning goroutines.
const helloTimeout = 30 * time.Second

// CoordListener accepts SiteConn streams and feeds their row blocks to a
// Handler. One goroutine serves each connection: it reads a Hello,
// answers with the handler's watermarks, then applies blocks and acks
// each one. Sequential per-connection handling means a slow handler
// backpressures the site through TCP and the site's in-flight window —
// there is no unbounded queue between socket and tracker.
type CoordListener struct {
	ln    net.Listener
	h     Handler
	stats Stats

	mu sync.Mutex
	//distlint:guarded-by mu
	conns map[net.Conn]struct{}
	//distlint:guarded-by mu
	closed bool
	wg     sync.WaitGroup
}

// NewCoordListener listens on addr (e.g. ":9070" or "127.0.0.1:0") and
// serves handler. Call Serve to accept; Addr for the bound address.
func NewCoordListener(addr string, h Handler) (*CoordListener, error) {
	if h == nil {
		return nil, fmt.Errorf("wire: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &CoordListener{ln: ln, h: h, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound listen address.
func (l *CoordListener) Addr() string { return l.ln.Addr().String() }

// Stats exposes the listener's aggregate frame/byte counters.
func (l *CoordListener) Stats() *Stats { return &l.stats }

// Serve accepts connections until Close. It always returns a non-nil
// error; after Close that error is ErrClosed.
func (l *CoordListener) Serve() error {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		//distlint:lifecycle serveConn exits when its conn is closed, by
		// the peer or by Close; Close waits on wg.
		go l.serveConn(conn)
	}
}

// Close stops accepting, drops every live connection, and waits for the
// per-connection goroutines to exit. Idempotent.
func (l *CoordListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return err
}

// serveConn runs one connection: handshake, then the block/ack loop.
func (l *CoordListener) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		l.wg.Done()
	}()

	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	dec := NewDecoder(bufio.NewReader(conn), &l.stats)
	enc := NewEncoder(conn, &l.stats)

	f, err := dec.Next()
	if err != nil || f.Kind != KindHello {
		return // not our protocol; drop silently
	}
	tracker, site := f.Hello.Tracker, f.Hello.Site
	applied, durable, err := l.h.Hello(tracker, site)
	if err != nil {
		_ = enc.Error(err.Error())
		return
	}
	if err := enc.HelloAck(HelloAck{Applied: applied, Durable: durable}); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	for {
		f, err := dec.Next()
		if err != nil {
			return
		}
		switch f.Kind {
		case KindRowBlock:
			if f.Block.Site != site {
				_ = enc.Error(fmt.Sprintf("wire: block for site %d on site %d's connection", f.Block.Site, site))
				return
			}
			applied, durable, err := l.h.RowBlock(tracker, site, f.Block.Seq, f.Block.Rows)
			if err != nil {
				_ = enc.Error(err.Error())
				return
			}
			if err := enc.Ack(Ack{Applied: applied, Durable: durable}); err != nil {
				return
			}
		default:
			_ = enc.Error(fmt.Sprintf("wire: unexpected %v frame", f.Kind))
			return
		}
	}
}
