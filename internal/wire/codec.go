package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Encoder writes frames to one stream. Each frame is staged — header and
// payload — in a single pooled buffer and written with one Write call, so
// a frame is never interleaved with another writer's bytes as long as
// callers serialize Encode* calls (SiteConn and CoordListener both guard
// their encoder with a mutex). Not safe for concurrent use.
type Encoder struct {
	w     io.Writer
	buf   []byte // staging: header + payload
	stats *Stats
}

// NewEncoder builds an encoder over w, counting traffic into stats
// (which may be nil).
func NewEncoder(w io.Writer, stats *Stats) *Encoder {
	return &Encoder{w: w, stats: stats}
}

// stage returns a staging buffer with room for an n-byte payload; the
// payload area is buf[HeaderSize : HeaderSize+n].
func (e *Encoder) stage(n int) []byte {
	total := HeaderSize + n
	if cap(e.buf) < total {
		e.buf = make([]byte, total)
	}
	return e.buf[:total]
}

// finish seals the staged frame — header fields and payload CRC — and
// writes it with a single Write.
func (e *Encoder) finish(kind Kind, buf []byte) error {
	payload := buf[HeaderSize:]
	binary.LittleEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = uint8(kind)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("wire: writing %v frame: %w", kind, err)
	}
	if e.stats != nil {
		e.stats.FramesOut.Add(1)
		e.stats.BytesOut.Add(int64(len(buf)))
	}
	return nil
}

// Hello writes the registration frame.
func (e *Encoder) Hello(h Hello) error {
	if h.Site < 0 || h.Site > math.MaxUint32 {
		return malformedf("site %d outside uint32", h.Site)
	}
	if len(h.Tracker) > math.MaxUint16 {
		return malformedf("tracker name of %d bytes", len(h.Tracker))
	}
	buf := e.stage(4 + 4 + 2 + len(h.Tracker))
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint32(p[0:4], uint32(h.Site))
	binary.LittleEndian.PutUint32(p[4:8], h.Flags)
	binary.LittleEndian.PutUint16(p[8:10], uint16(len(h.Tracker)))
	copy(p[10:], h.Tracker)
	return e.finish(KindHello, buf)
}

// HelloAck writes the handshake watermark reply.
func (e *Encoder) HelloAck(a HelloAck) error {
	buf := e.stage(ackSize)
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint64(p[0:8], a.Applied)
	binary.LittleEndian.PutUint64(p[8:16], a.Durable)
	return e.finish(KindHelloAck, buf)
}

// Ack writes a cumulative block acknowledgement.
func (e *Encoder) Ack(a Ack) error {
	buf := e.stage(ackSize)
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint64(p[0:8], a.Applied)
	binary.LittleEndian.PutUint64(p[8:16], a.Durable)
	return e.finish(KindAck, buf)
}

// Error writes a terminal error frame.
func (e *Encoder) Error(msg string) error {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf := e.stage(2 + len(msg))
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint16(p[0:2], uint16(len(msg)))
	copy(p[2:], msg)
	return e.finish(KindError, buf)
}

// RowBlock writes a numbered row block. Every row must have dim entries;
// the caller (SiteConn validates on SendBlock) guarantees it.
//
//distlint:hotpath
func (e *Encoder) RowBlock(seq uint64, site int, dim int, rows [][]float64) error {
	n := len(rows)
	payload := rowBlockHeadSize + n*dim*8
	if payload > MaxPayload {
		return fmt.Errorf("%w: %d rows × dim %d", ErrFrameTooLarge, n, dim) //distlint:alloc-ok oversize-frame error path
	}
	buf := e.stage(payload) //distlint:alloc-ok stage pools its buffer; growth stops at the high-water block size
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint64(p[0:8], seq)
	binary.LittleEndian.PutUint32(p[8:12], uint32(site))
	binary.LittleEndian.PutUint32(p[12:16], uint32(n))
	binary.LittleEndian.PutUint32(p[16:20], uint32(dim))
	off := rowBlockHeadSize
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint64(p[off:off+8], math.Float64bits(v))
			off += 8
		}
	}
	return e.finish(KindRowBlock, buf)
}

// RowBlockFlat writes a row block from row-major flat storage — the
// retransmit path, which retains blocks flattened.
//
//distlint:hotpath
func (e *Encoder) RowBlockFlat(seq uint64, site int, dim int, flat []float64) error {
	n := len(flat) / dim
	payload := rowBlockHeadSize + len(flat)*8
	if payload > MaxPayload {
		return fmt.Errorf("%w: %d rows × dim %d", ErrFrameTooLarge, n, dim) //distlint:alloc-ok oversize-frame error path
	}
	buf := e.stage(payload) //distlint:alloc-ok stage pools its buffer; growth stops at the high-water block size
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint64(p[0:8], seq)
	binary.LittleEndian.PutUint32(p[8:12], uint32(site))
	binary.LittleEndian.PutUint32(p[12:16], uint32(n))
	binary.LittleEndian.PutUint32(p[16:20], uint32(dim))
	off := rowBlockHeadSize
	for _, v := range flat {
		binary.LittleEndian.PutUint64(p[off:off+8], math.Float64bits(v))
		off += 8
	}
	return e.finish(KindRowBlock, buf)
}

// MsgBlock writes a batch of node-runtime messages as one frame.
func (e *Encoder) MsgBlock(ms []Msg) error {
	payload := 4
	for _, m := range ms {
		payload += msgHeadSize + len(m.Vec)*8
	}
	if payload > MaxPayload {
		return fmt.Errorf("%w: %d messages, %d bytes", ErrFrameTooLarge, len(ms), payload)
	}
	buf := e.stage(payload)
	p := buf[HeaderSize:]
	binary.LittleEndian.PutUint32(p[0:4], uint32(len(ms)))
	off := 4
	for _, m := range ms {
		if m.Site < 0 || m.Site > math.MaxUint32 {
			return malformedf("message site %d outside uint32", m.Site)
		}
		p[off] = m.Kind
		binary.LittleEndian.PutUint32(p[off+1:off+5], uint32(m.Site))
		binary.LittleEndian.PutUint64(p[off+5:off+13], m.Elem)
		binary.LittleEndian.PutUint64(p[off+13:off+21], math.Float64bits(m.Value))
		binary.LittleEndian.PutUint32(p[off+21:off+25], uint32(len(m.Vec)))
		off += msgHeadSize
		for _, v := range m.Vec {
			binary.LittleEndian.PutUint64(p[off:off+8], math.Float64bits(v))
			off += 8
		}
	}
	return e.finish(KindMsgBlock, buf)
}

// Decoder reads frames from one stream into pooled buffers. The Frame
// returned by Next — including row and vector views — is valid until the
// following Next call. Not safe for concurrent use.
type Decoder struct {
	r       io.Reader
	hdr     [HeaderSize]byte
	payload []byte // pooled payload buffer
	floats  []float64
	rowHdrs [][]float64
	msgs    []Msg
	frame   Frame
	stats   *Stats
}

// NewDecoder builds a decoder over r, counting traffic into stats (which
// may be nil). Wrap r in a bufio.Reader when it is a raw net.Conn.
func NewDecoder(r io.Reader, stats *Stats) *Decoder {
	return &Decoder{r: r, stats: stats}
}

// Next reads, verifies, and decodes the next frame. The returned pointer
// aliases the decoder's single frame slot: it is overwritten by the next
// call.
func (d *Decoder) Next() (*Frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return nil, err // io.EOF between frames is the clean-close signal
	}
	if binary.LittleEndian.Uint16(d.hdr[0:2]) != Magic {
		return nil, ErrBadMagic
	}
	if d.hdr[2] != Version {
		return nil, fmt.Errorf("%w: got %d, speak %d", ErrVersion, d.hdr[2], Version)
	}
	kind := Kind(d.hdr[3])
	n := binary.LittleEndian.Uint32(d.hdr[4:8])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %d-byte payload", ErrFrameTooLarge, n)
	}
	if cap(d.payload) < int(n) {
		d.payload = make([]byte, n)
	}
	p := d.payload[:n]
	if _, err := io.ReadFull(d.r, p); err != nil {
		return nil, fmt.Errorf("wire: reading %v payload: %w", kind, err)
	}
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(d.hdr[8:12]) {
		return nil, fmt.Errorf("%w: %v frame", ErrChecksum, kind)
	}
	if d.stats != nil {
		d.stats.FramesIn.Add(1)
		d.stats.BytesIn.Add(int64(HeaderSize + len(p)))
	}

	d.frame = Frame{Kind: kind}
	switch kind {
	case KindHello:
		if len(p) < 10 {
			return nil, malformedf("hello payload of %d bytes", len(p))
		}
		nameLen := int(binary.LittleEndian.Uint16(p[8:10]))
		if len(p) != 10+nameLen {
			return nil, malformedf("hello name length %d in %d-byte payload", nameLen, len(p))
		}
		d.frame.Hello = Hello{
			Site:    int(binary.LittleEndian.Uint32(p[0:4])),
			Flags:   binary.LittleEndian.Uint32(p[4:8]),
			Tracker: string(p[10:]),
		}
	case KindHelloAck, KindAck:
		if len(p) != ackSize {
			return nil, malformedf("%v payload of %d bytes", kind, len(p))
		}
		applied := binary.LittleEndian.Uint64(p[0:8])
		durable := binary.LittleEndian.Uint64(p[8:16])
		if kind == KindHelloAck {
			d.frame.HelloAck = HelloAck{Applied: applied, Durable: durable}
		} else {
			d.frame.Ack = Ack{Applied: applied, Durable: durable}
		}
	case KindRowBlock:
		if err := d.decodeRowBlock(p); err != nil {
			return nil, err
		}
	case KindMsgBlock:
		if err := d.decodeMsgBlock(p); err != nil {
			return nil, err
		}
	case KindError:
		if len(p) < 2 {
			return nil, malformedf("error payload of %d bytes", len(p))
		}
		msgLen := int(binary.LittleEndian.Uint16(p[0:2]))
		if len(p) != 2+msgLen {
			return nil, malformedf("error message length %d in %d-byte payload", msgLen, len(p))
		}
		d.frame.ErrMsg = string(p[2:])
	default:
		return nil, malformedf("unknown frame kind %d", uint8(kind))
	}
	return &d.frame, nil
}

// decodeRowBlock unpacks a row-block payload into the pooled float and
// row-header buffers; the resulting Rows alias them until the next call.
//
//distlint:hotpath
func (d *Decoder) decodeRowBlock(p []byte) error {
	if len(p) < rowBlockHeadSize {
		return malformedf("row-block payload of %d bytes", len(p)) //distlint:alloc-ok malformed-frame error path
	}
	seq := binary.LittleEndian.Uint64(p[0:8])
	site := int(binary.LittleEndian.Uint32(p[8:12]))
	rows := int(binary.LittleEndian.Uint32(p[12:16]))
	dim := int(binary.LittleEndian.Uint32(p[16:20]))
	if rows < 0 || dim <= 0 || len(p) != rowBlockHeadSize+rows*dim*8 {
		return malformedf("row-block %d×%d in %d-byte payload", rows, dim, len(p)) //distlint:alloc-ok malformed-frame error path
	}
	total := rows * dim
	if cap(d.floats) < total {
		d.floats = make([]float64, total) //distlint:alloc-ok pool growth to the high-water block size
	}
	if cap(d.rowHdrs) < rows {
		d.rowHdrs = make([][]float64, rows) //distlint:alloc-ok pool growth to the high-water row count
	}
	flat := d.floats[:total]
	off := rowBlockHeadSize
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8]))
		off += 8
	}
	hdrs := d.rowHdrs[:rows]
	for i := range hdrs {
		hdrs[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	d.frame.Block = RowBlock{Seq: seq, Site: site, Dim: dim, Rows: hdrs}
	return nil
}

// decodeMsgBlock unpacks a msg-block payload; vectors alias the pooled
// float buffer until the next call.
func (d *Decoder) decodeMsgBlock(p []byte) error {
	if len(p) < 4 {
		return malformedf("msg-block payload of %d bytes", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p[0:4]))
	if count < 0 || count > len(p) { // each record is ≥ 1 byte; cheap sanity bound
		return malformedf("msg-block count %d in %d-byte payload", count, len(p))
	}
	if cap(d.msgs) < count {
		d.msgs = make([]Msg, count)
	}
	// First pass sizes the float pool so vector views never reallocate
	// mid-decode (a growth would dangle the earlier views).
	off := 4
	totalVec := 0
	for i := 0; i < count; i++ {
		if off+msgHeadSize > len(p) {
			return malformedf("msg-block truncated at record %d", i)
		}
		vecLen := int(binary.LittleEndian.Uint32(p[off+21 : off+25]))
		if vecLen < 0 || off+msgHeadSize+vecLen*8 > len(p) {
			return malformedf("msg-block record %d vector length %d", i, vecLen)
		}
		totalVec += vecLen
		off += msgHeadSize + vecLen*8
	}
	if off != len(p) {
		return malformedf("msg-block has %d trailing bytes", len(p)-off)
	}
	if cap(d.floats) < totalVec {
		d.floats = make([]float64, totalVec)
	}
	flat := d.floats[:totalVec]
	msgs := d.msgs[:count]
	off = 4
	vecOff := 0
	for i := range msgs {
		vecLen := int(binary.LittleEndian.Uint32(p[off+21 : off+25]))
		msgs[i] = Msg{
			Kind:  p[off],
			Site:  int(binary.LittleEndian.Uint32(p[off+1 : off+5])),
			Elem:  binary.LittleEndian.Uint64(p[off+5 : off+13]),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(p[off+13 : off+21])),
		}
		off += msgHeadSize
		if vecLen > 0 {
			vec := flat[vecOff : vecOff+vecLen : vecOff+vecLen]
			for j := range vec {
				vec[j] = math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8]))
				off += 8
			}
			msgs[i].Vec = vec
			vecOff += vecLen
		}
	}
	d.frame.Msgs = msgs
	return nil
}
