package wire

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memHandler is a reference coordinator: it applies blocks with the same
// dedup/gap/watermark rules the service layer uses, into an in-memory
// log the tests compare against. With alwaysDurable it acks
// durable == applied (a coordinator that never restarts); otherwise
// durable advances only at checkpoint().
type memHandler struct {
	alwaysDurable bool
	rejectHello   error
	gate          chan struct{} // when non-nil, RowBlock waits per call

	mu      sync.Mutex
	applied map[int]uint64
	durable map[int]uint64
	log     []appliedBlock
	dups    int
}

type appliedBlock struct {
	site int
	seq  uint64
	rows [][]float64
}

// memCheckpoint is a point-in-time copy of handler state, standing in
// for the service layer's checkpoint file.
type memCheckpoint struct {
	applied map[int]uint64
	log     []appliedBlock
}

func newMemHandler(alwaysDurable bool) *memHandler {
	return &memHandler{
		alwaysDurable: alwaysDurable,
		applied:       make(map[int]uint64),
		durable:       make(map[int]uint64),
	}
}

func (h *memHandler) Hello(tracker string, site int) (uint64, uint64, error) {
	if h.rejectHello != nil {
		return 0, 0, h.rejectHello
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.applied[site], h.durable[site], nil
}

func (h *memHandler) RowBlock(tracker string, site int, seq uint64, rows [][]float64) (uint64, uint64, error) {
	if h.gate != nil {
		<-h.gate
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	a := h.applied[site]
	if seq <= a {
		h.dups++
		return a, h.durable[site], nil
	}
	if seq != a+1 {
		return 0, 0, fmt.Errorf("sequence gap: got %d, want %d", seq, a+1)
	}
	cp := make([][]float64, len(rows))
	for i, r := range rows {
		cp[i] = append([]float64(nil), r...)
	}
	h.log = append(h.log, appliedBlock{site: site, seq: seq, rows: cp})
	h.applied[site] = seq
	if h.alwaysDurable {
		h.durable[site] = seq
	}
	return seq, h.durable[site], nil
}

// checkpoint copies current state and advances the durable watermarks to
// it, like the service layer does after a checkpoint file lands.
func (h *memHandler) checkpoint() memCheckpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	ck := memCheckpoint{applied: make(map[int]uint64, len(h.applied))}
	for s, a := range h.applied {
		ck.applied[s] = a
		h.durable[s] = a
	}
	ck.log = append([]appliedBlock(nil), h.log...)
	return ck
}

// restore builds the handler a restarted coordinator would run: state
// from the checkpoint, everything after it lost.
func (ck memCheckpoint) restore(alwaysDurable bool) *memHandler {
	h := newMemHandler(alwaysDurable)
	for s, a := range ck.applied {
		h.applied[s] = a
		h.durable[s] = a
	}
	h.log = append([]appliedBlock(nil), ck.log...)
	return h
}

// TestDrainDurableProbe: a stream that is fully applied but not yet
// checkpoint-covered gets no further acks on its own — DrainDurable must
// still return once a checkpoint lands, via the duplicate-block probe
// that solicits a fresh watermark ack from the idle coordinator.
func TestDrainDurableProbe(t *testing.T) {
	h := newMemHandler(false)
	l := startListener(t, "127.0.0.1:0", h)
	defer l.Close()
	c, err := Dial(testSiteConfig(l.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := c.SendBlock(blockForSeq(seq, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, d, _ := c.Watermarks(); d != 0 {
		t.Fatalf("durable watermark %d before any checkpoint", d)
	}

	// Checkpoint while the stream is idle: no block is in flight, so no
	// ack would ever report the new durable watermark unprobed.
	h.checkpoint()
	if err := c.DrainDurable(ctx); err != nil {
		t.Fatalf("DrainDurable after an idle checkpoint: %v", err)
	}
	if a, d, _ := c.Watermarks(); a != 5 || d != 5 {
		t.Fatalf("watermarks %d/%d after durable drain, want 5/5", a, d)
	}
	h.mu.Lock()
	dups := h.dups
	h.mu.Unlock()
	if dups == 0 {
		t.Fatal("durable drain completed without any probe duplicates")
	}
	verifyLog(t, h, 0, 5, 3, 4)
}

// blockForSeq generates the deterministic test block for a sequence
// number, so any process can reproduce what block N must contain.
func blockForSeq(seq uint64, n, dim int) [][]float64 {
	return randRows(rand.New(rand.NewSource(int64(seq)*1337+7)), n, dim)
}

// verifyLog requires the handler to hold exactly blocks 1..n for site,
// in order, bit-identical to the generator — every block applied exactly
// once.
func verifyLog(t *testing.T, h *memHandler, site int, n, rowsPer, dim int) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.log) != n {
		t.Fatalf("applied %d blocks, want %d", len(h.log), n)
	}
	for i, b := range h.log {
		if b.site != site || b.seq != uint64(i+1) {
			t.Fatalf("log[%d] = site %d seq %d, want site %d seq %d", i, b.site, b.seq, site, i+1)
		}
		want := blockForSeq(b.seq, rowsPer, dim)
		if len(b.rows) != len(want) {
			t.Fatalf("block %d has %d rows, want %d", b.seq, len(b.rows), len(want))
		}
		for r := range want {
			for c := range want[r] {
				if math.Float64bits(b.rows[r][c]) != math.Float64bits(want[r][c]) {
					t.Fatalf("block %d row %d col %d: %v != %v", b.seq, r, c, b.rows[r][c], want[r][c])
				}
			}
		}
	}
}

// startListener runs a CoordListener on a loopback port and returns it.
func startListener(t *testing.T, addr string, h Handler) *CoordListener {
	t.Helper()
	l, err := NewCoordListener(addr, h)
	if err != nil {
		t.Fatal(err)
	}
	go l.Serve()
	return l
}

func testSiteConfig(addr string) SiteConfig {
	return SiteConfig{
		Addr:        addr,
		Site:        0,
		Tracker:     "t",
		DialTimeout: 2 * time.Second,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
}

// TestSiteStreamBasic: a clean stream delivers every block exactly once
// and the endpoint counters move.
func TestSiteStreamBasic(t *testing.T) {
	h := newMemHandler(true)
	l := startListener(t, "127.0.0.1:0", h)
	defer l.Close()

	c, err := Dial(testSiteConfig(l.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const blocks, rowsPer, dim = 50, 4, 3
	for seq := uint64(1); seq <= blocks; seq++ {
		if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, h, 0, blocks, rowsPer, dim)
	if h.dups != 0 {
		t.Fatalf("%d duplicate blocks on a clean stream", h.dups)
	}
	if got := l.Stats().FramesIn.Load(); got < blocks+1 {
		t.Fatalf("listener decoded %d frames, want ≥ %d", got, blocks+1)
	}
	if c.Stats().BytesOut.Load() == 0 || l.Stats().BytesOut.Load() == 0 {
		t.Fatal("byte counters did not move")
	}
	applied, durable, last := c.Watermarks()
	if applied != blocks || durable != blocks || last != blocks {
		t.Fatalf("watermarks %d/%d/%d, want %d across", applied, durable, last, blocks)
	}
}

// TestSiteWindowBackpressure: with the coordinator stalled, SendBlock
// admits exactly Window blocks and then waits.
func TestSiteWindowBackpressure(t *testing.T) {
	h := newMemHandler(true)
	h.gate = make(chan struct{})
	l := startListener(t, "127.0.0.1:0", h)
	defer l.Close()

	cfg := testSiteConfig(l.Addr())
	cfg.Window = 4
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const blocks, rowsPer, dim = 10, 2, 3
	var sent atomic.Int64
	go func() {
		for seq := uint64(1); seq <= blocks; seq++ {
			if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
				return
			}
			sent.Add(1)
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for sent.Load() < int64(cfg.Window) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would overshoot here if the window leaked
	if got := sent.Load(); got != int64(cfg.Window) {
		t.Fatalf("sender admitted %d blocks against a window of %d", got, cfg.Window)
	}

	close(h.gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for sent.Load() < blocks && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, h, 0, blocks, rowsPer, dim)
}

// TestSiteReconnectBackoff: a site started before its coordinator keeps
// retrying with backoff and delivers everything once the coordinator
// appears.
func TestSiteReconnectBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c, err := Dial(testSiteConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().DialErrors.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Stats().DialErrors.Load() < 2 {
		t.Fatal("site did not retry the dead address")
	}

	h := newMemHandler(true)
	l := startListener(t, addr, h)
	defer l.Close()

	const blocks, rowsPer, dim = 20, 3, 2
	for seq := uint64(1); seq <= blocks; seq++ {
		if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, h, 0, blocks, rowsPer, dim)
}

// TestSiteRejected: a handshake rejection is terminal — no retry storm,
// and every entry point reports the coordinator's reason.
func TestSiteRejected(t *testing.T) {
	h := newMemHandler(true)
	h.rejectHello = errors.New("tracker not found")
	l := startListener(t, "127.0.0.1:0", h)
	defer l.Close()

	c, err := Dial(testSiteConfig(l.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(c.Err(), ErrRejected) {
		t.Fatalf("Err() = %v, want ErrRejected", c.Err())
	}
	if err := c.SendBlock([][]float64{{1}}); !errors.Is(err, ErrRejected) {
		t.Fatalf("SendBlock after rejection: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Drain(ctx); !errors.Is(err, ErrRejected) {
		t.Fatalf("Drain after rejection: %v", err)
	}
}

// TestCoordinatorRestartResume: kill the coordinator after a checkpoint,
// restart it from that checkpoint, and the site's retained blocks above
// the durable watermark rebuild the exact full stream.
func TestCoordinatorRestartResume(t *testing.T) {
	h1 := newMemHandler(false)
	l1 := startListener(t, "127.0.0.1:0", h1)
	addr := l1.Addr()

	c, err := Dial(testSiteConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rowsPer, dim = 3, 4
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	for seq := uint64(1); seq <= 30; seq++ {
		if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ck := h1.checkpoint() // durable watermark now covers 1..30

	// Blocks 31..50 are applied and acked but never checkpointed: the
	// site must keep them.
	for seq := uint64(31); seq <= 50; seq++ {
		if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	l1.Close() // coordinator dies; everything after the checkpoint is lost

	h2 := ck.restore(false)
	l2 := startListener(t, addr, h2)
	defer l2.Close()

	for seq := uint64(51); seq <= 60; seq++ {
		if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	verifyLog(t, h2, 0, 60, rowsPer, dim)
	if got := c.Stats().Retransmits.Load(); got < 20 {
		t.Fatalf("retransmitted %d blocks, want ≥ 20 (blocks 31..50)", got)
	}
}

// TestListenerIgnoresGarbage: a connection that never speaks the
// protocol is dropped without disturbing real sessions.
func TestListenerIgnoresGarbage(t *testing.T) {
	h := newMemHandler(true)
	l := startListener(t, "127.0.0.1:0", h)
	defer l.Close()

	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	raw.Close()

	c, err := Dial(testSiteConfig(l.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendBlock(blockForSeq(1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, h, 0, 1, 2, 2)
}
