package wire

import (
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faultProxy sits between a SiteConn and a CoordListener and mangles the
// site→coordinator stream frame by frame: forward, duplicate, drop,
// split into tiny writes, stall, or sever the connection mid-frame.
// Coordinator→site traffic (acks) passes through untouched. Only
// row-block frames are faulted, so the handshake always completes and
// every fault lands on the path the resume machinery must heal.
type faultProxy struct {
	t      *testing.T
	ln     net.Listener
	target string
	seed   int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connSeq atomic.Int64
	dups    atomic.Int64
	drops   atomic.Int64
	splits  atomic.Int64
	stalls  atomic.Int64
	severs  atomic.Int64
}

func newFaultProxy(t *testing.T, target string, seed int64) *faultProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &faultProxy{t: t, ln: ln, target: target, seed: seed, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

func (p *faultProxy) addr() string { return p.ln.Addr().String() }

func (p *faultProxy) close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *faultProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *faultProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *faultProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		site, err := p.ln.Accept()
		if err != nil {
			return
		}
		coord, err := net.Dial("tcp", p.target)
		if err != nil {
			site.Close()
			continue
		}
		if !p.track(site) || !p.track(coord) {
			site.Close()
			coord.Close()
			return
		}
		rng := rand.New(rand.NewSource(p.seed + p.connSeq.Add(1)))
		p.wg.Add(1)
		go p.pipe(site, coord, rng)
	}
}

// pipe relays one proxied connection, applying faults to site→coord
// frames. Closing either end tears the pair down; the site reconnects
// through a fresh accepted connection.
func (p *faultProxy) pipe(site, coord net.Conn, rng *rand.Rand) {
	defer p.wg.Done()
	defer p.untrack(site)
	defer p.untrack(coord)
	defer site.Close()
	defer coord.Close()

	p.wg.Add(1)
	go func() { // acks back to the site, unmangled
		defer p.wg.Done()
		io.Copy(site, coord)
		site.Close()
	}()

	hdr := make([]byte, HeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(site, hdr); err != nil {
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[4:8])
		if plen > MaxPayload {
			return
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(site, payload); err != nil {
			return
		}
		frame := append(append([]byte(nil), hdr...), payload...)

		if Kind(hdr[3]) != KindRowBlock {
			if _, err := coord.Write(frame); err != nil {
				return
			}
			continue
		}
		switch roll := rng.Intn(100); {
		case roll < 70: // forward
			if _, err := coord.Write(frame); err != nil {
				return
			}
		case roll < 80: // duplicate: coordinator must dedup on seq
			p.dups.Add(1)
			if _, err := coord.Write(frame); err != nil {
				return
			}
			if _, err := coord.Write(frame); err != nil {
				return
			}
		case roll < 88: // split into 7-byte writes: framing must reassemble
			p.splits.Add(1)
			for off := 0; off < len(frame); off += 7 {
				end := min(off+7, len(frame))
				if _, err := coord.Write(frame[off:end]); err != nil {
					return
				}
			}
		case roll < 94: // stall, then deliver
			p.stalls.Add(1)
			time.Sleep(10 * time.Millisecond)
			if _, err := coord.Write(frame); err != nil {
				return
			}
		case roll < 97: // drop: coordinator sees a gap, errors, site resumes
			p.drops.Add(1)
		default: // sever mid-frame: half a block then a dead socket
			p.severs.Add(1)
			coord.Write(frame[:len(frame)/2])
			return
		}
	}
}

// TestFaultInjectionExactlyOnce streams hundreds of blocks through the
// fault proxy and requires the coordinator's applied log to be exactly
// the sent stream — every block once, in order, bit-identical — with
// the site healing every injected failure via reconnect + watermark
// resume.
func TestFaultInjectionExactlyOnce(t *testing.T) {
	h := newMemHandler(true)
	l := startListener(t, "127.0.0.1:0", h)
	defer l.Close()
	p := newFaultProxy(t, l.Addr(), 42)
	defer p.close()

	cfg := testSiteConfig(p.addr())
	cfg.DialTimeout = 500 * time.Millisecond
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const blocks, rowsPer, dim = 200, 4, 3
	for seq := uint64(1); seq <= blocks; seq++ {
		if err := c.SendBlock(blockForSeq(seq, rowsPer, dim)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain through fault proxy: %v (faults: %d dup %d drop %d split %d stall %d sever)",
			err, p.dups.Load(), p.drops.Load(), p.splits.Load(), p.stalls.Load(), p.severs.Load())
	}

	verifyLog(t, h, 0, blocks, rowsPer, dim)

	faulted := p.dups.Load() + p.drops.Load() + p.splits.Load() + p.stalls.Load() + p.severs.Load()
	if faulted == 0 {
		t.Fatal("proxy injected no faults; the test proved nothing")
	}
	if p.severs.Load()+p.drops.Load() > 0 && c.Stats().Connects.Load() < 2 {
		t.Fatalf("stream was severed but the site never reconnected (connects=%d)", c.Stats().Connects.Load())
	}
	t.Logf("faults: %d dup, %d drop, %d split, %d stall, %d sever; %d reconnects, %d retransmits, %d dedups",
		p.dups.Load(), p.drops.Load(), p.splits.Load(), p.stalls.Load(), p.severs.Load(),
		c.Stats().Connects.Load()-1, c.Stats().Retransmits.Load(), h.dups)
}
