package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPriorityDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// P(ρ ≥ τ) = min(1, w/τ).
	const n = 200000
	w, tau := 2.0, 8.0
	hits := 0
	for i := 0; i < n; i++ {
		if Priority(w, rng) >= tau {
			hits++
		}
	}
	got := float64(hits) / n
	want := w / tau
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(ρ≥τ) = %v want %v", got, want)
	}
}

func TestPriorityPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Priority(0, rand.New(rand.NewSource(1)))
}

func TestPrioritySamplerRoundDoubling(t *testing.T) {
	p := NewPrioritySampler(4)
	if p.Threshold() != 1 {
		t.Fatalf("initial τ = %v want 1", p.Threshold())
	}
	// Four elements with priority ≥ 2τ must end the round.
	ended := false
	for i := 0; i < 4; i++ {
		ended = p.Offer(Prioritized{Key: uint64(i), Weight: 1, Priority: 3})
	}
	if !ended {
		t.Fatal("round should have ended after s high-priority offers")
	}
	if p.Threshold() != 2 {
		t.Fatalf("τ = %v want 2 after round", p.Threshold())
	}
	if p.Rounds() != 1 {
		t.Fatalf("Rounds = %d want 1", p.Rounds())
	}
}

func TestPrioritySamplerRePartition(t *testing.T) {
	p := NewPrioritySampler(2)
	// Priorities 100 and 200 are ≥ 2τ for several doublings.
	p.Offer(Prioritized{Key: 1, Weight: 1, Priority: 100})
	p.Offer(Prioritized{Key: 2, Weight: 1, Priority: 200})
	// After round end τ=2; both still ≥ 4 → immediately re-split, possibly
	// cascading. Both elements must be retained.
	if p.Size() != 2 {
		t.Fatalf("Size = %d want 2", p.Size())
	}
}

func TestPrioritySamplerIgnoresStale(t *testing.T) {
	p := NewPrioritySampler(2)
	p.Offer(Prioritized{Key: 1, Weight: 1, Priority: 8})
	p.Offer(Prioritized{Key: 2, Weight: 1, Priority: 8})
	// τ is now 2. A stale priority below τ must be dropped.
	before := p.Size()
	p.Offer(Prioritized{Key: 3, Weight: 1, Priority: 1.5})
	if p.Size() != before {
		t.Fatal("stale offer should be ignored")
	}
}

// Property: the total-weight estimator is unbiased within sampling error.
func TestPrioritySamplerUnbiasedTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 60
	var relErrSum float64
	for trial := 0; trial < trials; trial++ {
		p := NewPrioritySampler(256)
		var w float64
		for i := 0; i < 5000; i++ {
			wi := 1 + rng.Float64()*9
			w += wi
			rho := Priority(wi, rng)
			if rho >= p.Threshold() {
				p.Offer(Prioritized{Key: uint64(i), Weight: wi, Priority: rho})
			}
		}
		est := p.EstimateTotal()
		relErrSum += (est - w) / w
	}
	avgBias := relErrSum / trials
	if math.Abs(avgBias) > 0.02 {
		t.Fatalf("average relative bias %v too large", avgBias)
	}
}

// Property: per-key estimates track exact frequencies within εW for
// s = (1/ε²)·ln(1/ε).
func TestPrioritySamplerKeyEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eps := 0.1
	p := NewPrioritySampler(RecommendedSampleSize(eps))
	exact := make(map[uint64]float64)
	var w float64
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(20))
		wi := 1 + rng.Float64()*4
		exact[key] += wi
		w += wi
		rho := Priority(wi, rng)
		if rho >= p.Threshold() {
			p.Offer(Prioritized{Key: key, Weight: wi, Priority: rho})
		}
	}
	for key, fe := range exact {
		got := p.EstimateKey(key)
		if math.Abs(got-fe) > eps*w {
			t.Fatalf("key %d: estimate %v exact %v exceeds εW = %v", key, got, fe, eps*w)
		}
	}
	// EstimateAll must agree with EstimateKey.
	for _, kw := range p.EstimateAll() {
		if math.Abs(kw.Weight-p.EstimateKey(kw.Key)) > 1e-9 {
			t.Fatal("EstimateAll inconsistent with EstimateKey")
		}
	}
}

func TestSampleDropsMinPriority(t *testing.T) {
	p := NewPrioritySampler(8)
	for i := 0; i < 5; i++ {
		p.Offer(Prioritized{Key: uint64(i), Weight: 1, Priority: float64(i) + 1})
	}
	items, rhoHat := p.Sample()
	if len(items) != 4 {
		t.Fatalf("sample size %d want 4", len(items))
	}
	if rhoHat != 1 {
		t.Fatalf("ρ̂ = %v want 1 (the min priority)", rhoHat)
	}
	for _, e := range items {
		if e.Weight < rhoHat {
			t.Fatal("adjusted weight below ρ̂")
		}
	}
}

func TestSampleEmptyAndSingleton(t *testing.T) {
	p := NewPrioritySampler(4)
	if items, _ := p.Sample(); items != nil {
		t.Fatal("empty sampler should give nil sample")
	}
	p.Offer(Prioritized{Key: 1, Weight: 1, Priority: 1})
	if items, _ := p.Sample(); items != nil {
		t.Fatal("singleton sampler should give nil sample")
	}
}

func TestRecommendedSampleSize(t *testing.T) {
	if s := RecommendedSampleSize(0.1); s != int(math.Ceil(100*math.Log(10))) {
		t.Fatalf("s(0.1) = %d", s)
	}
	if s := RecommendedSampleSize(0.9); s != 16 {
		t.Fatalf("clamp failed: %d", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad ε")
		}
	}()
	RecommendedSampleSize(0)
}

// Property: number of rounds grows logarithmically with total weight.
func TestRoundsLogarithmic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 32
		p := NewPrioritySampler(s)
		n := 2000
		beta := 8.0
		var w float64
		for i := 0; i < n; i++ {
			wi := 1 + rng.Float64()*(beta-1)
			w += wi
			rho := Priority(wi, rng)
			if rho >= p.Threshold() {
				p.Offer(Prioritized{Key: uint64(i), Weight: wi, Priority: rho})
			}
		}
		// Lemma 4: rounds = O(log(βN/s)); allow constant 3 plus slack.
		bound := 3*math.Log2(beta*float64(n)/float64(s)) + 8
		return float64(p.Rounds()) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
