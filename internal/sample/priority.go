// Package sample implements the weighted sampling machinery behind protocol
// P3: priority sampling without replacement (Duffield–Lund–Thorup), k
// independent with-replacement samplers, and a weighted reservoir sampler
// used as an additional baseline. All samplers are deterministic given a
// *rand.Rand.
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Prioritized is a stream element annotated with its priority ρ = w/u,
// u ~ Unif(0,1]. Elements with priority above a threshold form a weighted
// sample without replacement.
type Prioritized struct {
	Key      uint64    // element label (or row index for matrix streams)
	Weight   float64   // original weight
	Priority float64   // ρ = Weight / u
	Payload  []float64 // optional row payload for matrix streams
}

// Priority draws a priority for weight w using rng. Weights must be positive.
func Priority(w float64, rng *rand.Rand) float64 {
	if w <= 0 {
		panic(fmt.Sprintf("sample: non-positive weight %v", w))
	}
	// Unif(0,1]: avoid a zero divisor.
	u := 1 - rng.Float64()
	return w / u
}

// PrioritySampler maintains the coordinator-side state of the paper's P3
// protocol (Algorithm 4.6): two priority buckets Q_j and Q_{j+1} for the
// current round j with threshold τ_j, doubling the threshold whenever
// Q_{j+1} reaches the target sample size s. Sites forward elements whose
// priority exceeds τ_j; the union Q_j ∪ Q_{j+1} is a priority sample without
// replacement of size ≥ s (until the stream is exhausted).
type PrioritySampler struct {
	s      int
	tau    float64
	qj     []Prioritized // τ ≤ ρ < 2τ
	qj1    []Prioritized // ρ ≥ 2τ
	rounds int
}

// NewPrioritySampler returns a coordinator sampler targeting sample size
// s ≥ 1 with initial threshold 1 (so all weight-≥1 elements are forwarded at
// the start, matching the paper).
func NewPrioritySampler(s int) *PrioritySampler {
	if s < 1 {
		panic(fmt.Sprintf("sample: need s ≥ 1, got %d", s))
	}
	return &PrioritySampler{s: s, tau: 1}
}

// Threshold returns the current round threshold τ_j. Sites must forward
// exactly the elements with priority ≥ τ_j.
func (p *PrioritySampler) Threshold() float64 { return p.tau }

// Rounds returns how many times the threshold has doubled.
func (p *PrioritySampler) Rounds() int { return p.rounds }

// TargetSize returns s.
func (p *PrioritySampler) TargetSize() int { return p.s }

// Offer ingests an element forwarded by a site. It returns newRound=true if
// the offer completed the current round, in which case the caller must
// broadcast the new Threshold() to all sites.
func (p *PrioritySampler) Offer(e Prioritized) (newRound bool) {
	if e.Priority < p.tau {
		// Late arrival below the current threshold: legal in an asynchronous
		// network but impossible in our sequential simulator; ignore.
		return false
	}
	if e.Priority >= 2*p.tau {
		p.qj1 = append(p.qj1, e)
	} else {
		p.qj = append(p.qj, e)
	}
	if len(p.qj1) >= p.s {
		p.advance()
		return true
	}
	return false
}

// advance ends the round: τ doubles, Q_j is discarded, and Q_{j+1} is split
// against the doubled threshold.
func (p *PrioritySampler) advance() {
	p.tau *= 2
	p.rounds++
	old := p.qj1
	p.qj = p.qj[:0]
	p.qj1 = nil
	for _, e := range old {
		if e.Priority >= 2*p.tau {
			p.qj1 = append(p.qj1, e)
		} else {
			p.qj = append(p.qj, e)
		}
	}
}

// Size returns |Q_j ∪ Q_{j+1}|.
func (p *PrioritySampler) Size() int { return len(p.qj) + len(p.qj1) }

// Sample extracts the estimation sample per Section 4.3 of the paper: all
// retained elements except the one with the smallest priority ρ̂, each
// assigned the adjusted weight w̄ᵢ = max(wᵢ, ρ̂). The returned threshold is
// ρ̂. An empty or singleton pool yields a nil sample.
func (p *PrioritySampler) Sample() (items []Prioritized, rhoHat float64) {
	pool := make([]Prioritized, 0, p.Size())
	pool = append(pool, p.qj...)
	pool = append(pool, p.qj1...)
	if len(pool) <= 1 {
		return nil, 0
	}
	minIdx := 0
	for i, e := range pool {
		if e.Priority < pool[minIdx].Priority {
			minIdx = i
		}
	}
	rhoHat = pool[minIdx].Priority
	pool[minIdx] = pool[len(pool)-1]
	pool = pool[:len(pool)-1]
	out := make([]Prioritized, len(pool))
	for i, e := range pool {
		w := e.Weight
		if w < rhoHat {
			w = rhoHat
		}
		out[i] = Prioritized{Key: e.Key, Weight: w, Priority: e.Priority, Payload: e.Payload}
	}
	return out, rhoHat
}

// EstimateTotal returns the priority-sampling estimator of the total stream
// weight: Σ w̄ᵢ over the sample. E[estimate] = W.
func (p *PrioritySampler) EstimateTotal() float64 {
	items, _ := p.Sample()
	var w float64
	for _, e := range items {
		w += e.Weight
	}
	return w
}

// EstimateKey returns the estimated total weight of a single key from the
// sample (the f_e(S) estimator of Lemma 6).
func (p *PrioritySampler) EstimateKey(key uint64) float64 {
	items, _ := p.Sample()
	var w float64
	for _, e := range items {
		if e.Key == key {
			w += e.Weight
		}
	}
	return w
}

// EstimateAll returns estimated weights for every key present in the sample,
// sorted by key for determinism.
func (p *PrioritySampler) EstimateAll() []KeyWeight {
	items, _ := p.Sample()
	agg := make(map[uint64]float64)
	for _, e := range items {
		agg[e.Key] += e.Weight
	}
	out := make([]KeyWeight, 0, len(agg))
	for k, w := range agg {
		out = append(out, KeyWeight{Key: k, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KeyWeight pairs a key with an estimated weight.
type KeyWeight struct {
	Key    uint64
	Weight float64
}

// RecommendedSampleSize returns the paper's s = Θ((1/ε²)·ln(1/ε)) with unit
// constant, clamped below at 16.
func RecommendedSampleSize(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("sample: need 0 < ε < 1, got %v", eps))
	}
	s := int(math.Ceil(1 / (eps * eps) * math.Log(1/eps)))
	if s < 16 {
		s = 16
	}
	return s
}
