package sample

import (
	"math"
	"math/rand"
	"testing"
)

// feedWR drives a WRSampler with a synthetic stream, handling the site-side
// priority draws and threshold bookkeeping as the P3wr protocol would.
func feedWR(w *WRSampler, n int, beta float64, rng *rand.Rand) (total float64, exact map[uint64]float64) {
	exact = make(map[uint64]float64)
	for i := 0; i < n; i++ {
		key := uint64(rng.Intn(10))
		wi := 1 + rng.Float64()*(beta-1)
		total += wi
		exact[key] += wi
		idx, pri := SitePriorities(wi, w.Threshold(), w.Samplers(), rng)
		for t := range idx {
			w.Offer(idx[t], Prioritized{Key: key, Weight: wi, Priority: pri[t]})
		}
	}
	return total, exact
}

func TestWRSamplerUnbiasedTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const trials = 30
	var relBias float64
	for trial := 0; trial < trials; trial++ {
		w := NewWRSampler(128)
		total, _ := feedWR(w, 3000, 10, rng)
		relBias += (w.EstimateTotal() - total) / total
	}
	relBias /= trials
	if math.Abs(relBias) > 0.05 {
		t.Fatalf("average relative bias %v too large", relBias)
	}
}

func TestWRSamplerKeyEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := NewWRSampler(600)
	total, exact := feedWR(w, 20000, 5, rng)
	for key, fe := range exact {
		got := w.EstimateKey(key)
		if math.Abs(got-fe) > 0.15*total {
			t.Fatalf("key %d estimate %v exact %v (W=%v)", key, got, fe, total)
		}
	}
}

func TestWRSamplerSampleSizeAndWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := NewWRSampler(50)
	feedWR(w, 2000, 4, rng)
	s := w.Sample()
	if len(s) != 50 {
		t.Fatalf("sample size %d want 50", len(s))
	}
	// All adjusted weights must equal Ŵ/s.
	want := w.EstimateTotal() / 50
	for _, e := range s {
		if math.Abs(e.Weight-want) > 1e-9 {
			t.Fatalf("adjusted weight %v want %v", e.Weight, want)
		}
	}
}

func TestWRSamplerRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := NewWRSampler(8)
	feedWR(w, 5000, 8, rng)
	if w.Rounds() == 0 {
		t.Fatal("threshold never doubled on a 5000-element stream")
	}
	if w.Threshold() != math.Pow(2, float64(w.Rounds())) {
		t.Fatalf("τ = %v inconsistent with %d rounds", w.Threshold(), w.Rounds())
	}
}

func TestWRSamplerOfferValidation(t *testing.T) {
	w := NewWRSampler(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range sampler index")
		}
	}()
	w.Offer(4, Prioritized{})
}

func TestWRSamplerTopTwoMaintenance(t *testing.T) {
	w := NewWRSampler(1)
	w.Offer(0, Prioritized{Key: 1, Priority: 5})
	w.Offer(0, Prioritized{Key: 2, Priority: 3})
	w.Offer(0, Prioritized{Key: 3, Priority: 10})
	// top1=10 (key 3), top2=5.
	if w.EstimateTotal() != 5 {
		t.Fatalf("Ŵ = %v want 5 (the second priority)", w.EstimateTotal())
	}
	s := w.Sample()
	if len(s) != 1 || s[0].Key != 3 {
		t.Fatalf("sample = %+v want key 3", s)
	}
}

func TestSitePrioritiesThresholdFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// With τ huge, almost nothing passes; with τ ≤ w everything passes.
	idx, _ := SitePriorities(2, 2, 100, rng)
	if len(idx) != 100 {
		t.Fatalf("τ ≤ w must pass all samplers, got %d/100", len(idx))
	}
	passed := 0
	for trial := 0; trial < 200; trial++ {
		idx, _ := SitePriorities(1, 1e6, 10, rng)
		passed += len(idx)
	}
	if passed > 40 { // E = 200·10·1e-6 = 0.002
		t.Fatalf("too many passes at huge τ: %d", passed)
	}
}

func TestNewWRSamplerValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWRSampler(0)
}
