package sample

import (
	"fmt"
	"math/rand"
)

// Reservoir is a single-stream weighted reservoir sampler without
// replacement (Efraimidis–Spirakis via the priority/exponential-jump
// formulation): it retains the k items with the largest priorities ρ = w/u.
// It is the centralized counterpart of the distributed PrioritySampler and
// is used as a baseline and in tests.
type Reservoir struct {
	k     int
	items []Prioritized // min-heap on Priority
	seen  int
	total float64
}

// NewReservoir returns a sampler retaining k ≥ 1 items.
func NewReservoir(k int) *Reservoir {
	if k < 1 {
		panic(fmt.Sprintf("sample: need k ≥ 1, got %d", k))
	}
	return &Reservoir{k: k}
}

// Offer processes one weighted element.
func (r *Reservoir) Offer(key uint64, weight float64, payload []float64, rng *rand.Rand) {
	r.seen++
	r.total += weight
	e := Prioritized{Key: key, Weight: weight, Priority: Priority(weight, rng), Payload: payload}
	if len(r.items) < r.k {
		r.items = append(r.items, e)
		r.up(len(r.items) - 1)
		return
	}
	if e.Priority <= r.items[0].Priority {
		return
	}
	r.items[0] = e
	r.down(0)
}

// Threshold returns the smallest retained priority (τ for the sample), or 0
// if fewer than k items have been seen.
func (r *Reservoir) Threshold() float64 {
	if len(r.items) < r.k {
		return 0
	}
	return r.items[0].Priority
}

// Sample returns the retained items with adjusted weights w̄ = max(w, τ̂)
// where τ̂ is the k-th (smallest retained) priority; if the reservoir is not
// yet full, raw weights are returned (the sample is the whole stream).
func (r *Reservoir) Sample() []Prioritized {
	out := make([]Prioritized, len(r.items))
	copy(out, r.items)
	if len(r.items) < r.k {
		return out
	}
	// Exclude the minimum-priority item from estimation adjustment use:
	// the standard estimator drops it and uses its priority as τ̂.
	tau := r.items[0].Priority
	adj := out[:0]
	for i, e := range out {
		if i == 0 {
			continue // heap root = min priority item, dropped
		}
		w := e.Weight
		if w < tau {
			w = tau
		}
		adj = append(adj, Prioritized{Key: e.Key, Weight: w, Priority: e.Priority, Payload: e.Payload})
	}
	return adj
}

// EstimateTotal returns the priority-sampling estimate of total weight.
func (r *Reservoir) EstimateTotal() float64 {
	if len(r.items) < r.k {
		return r.total
	}
	var w float64
	for _, e := range r.Sample() {
		w += e.Weight
	}
	return w
}

// Seen returns the number of offered elements.
func (r *Reservoir) Seen() int { return r.seen }

// Total returns the exact total weight offered (for tests).
func (r *Reservoir) Total() float64 { return r.total }

// min-heap maintenance on Priority.
func (r *Reservoir) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.items[p].Priority <= r.items[i].Priority {
			break
		}
		r.items[p], r.items[i] = r.items[i], r.items[p]
		i = p
	}
}

func (r *Reservoir) down(i int) {
	n := len(r.items)
	for {
		l, rt := 2*i+1, 2*i+2
		small := i
		if l < n && r.items[l].Priority < r.items[small].Priority {
			small = l
		}
		if rt < n && r.items[rt].Priority < r.items[small].Priority {
			small = rt
		}
		if small == i {
			return
		}
		r.items[i], r.items[small] = r.items[small], r.items[i]
		i = small
	}
}
