package sample

import (
	"fmt"
	"math/rand"
)

// WRSampler maintains the coordinator-side state of the with-replacement
// variant of protocol P3 (Section 4.3.1): s independent priority samplers.
// Sampler t keeps the top two priorities ρ⁽¹⁾_t > ρ⁽²⁾_t it has seen along
// with the element attached to ρ⁽¹⁾_t. The Duffield–Lund–Thorup identity
// E[ρ⁽²⁾_t] = W turns each sampler into an independent weighted sample with
// replacement plus an unbiased total-weight estimate.
//
// A round ends when every sampler's second priority exceeds 2τ_j; the
// coordinator then doubles the threshold.
type WRSampler struct {
	s      int
	tau    float64
	top1   []float64
	top2   []float64
	elems  []Prioritized
	rounds int
}

// NewWRSampler returns a coordinator with s independent samplers and initial
// threshold 1.
func NewWRSampler(s int) *WRSampler {
	if s < 1 {
		panic(fmt.Sprintf("sample: need s ≥ 1, got %d", s))
	}
	return &WRSampler{
		s:     s,
		tau:   1,
		top1:  make([]float64, s),
		top2:  make([]float64, s),
		elems: make([]Prioritized, s),
	}
}

// Threshold returns the current round threshold τ_j.
func (w *WRSampler) Threshold() float64 { return w.tau }

// Rounds returns how many times the threshold has doubled.
func (w *WRSampler) Rounds() int { return w.rounds }

// Samplers returns s.
func (w *WRSampler) Samplers() int { return w.s }

// SitePriorities draws the per-sampler priorities for a weight-w element at
// a site and returns the indices of samplers whose priority passes the
// current threshold, with the priorities drawn. Sites forward only those
// (index, priority) pairs, so the expected message size shrinks as τ grows.
func SitePriorities(weight, tau float64, s int, rng *rand.Rand) (idx []int, pri []float64) {
	for t := 0; t < s; t++ {
		rho := Priority(weight, rng)
		if rho >= tau {
			idx = append(idx, t)
			pri = append(pri, rho)
		}
	}
	return idx, pri
}

// Offer ingests one forwarded (sampler index, prioritized element) pair.
// It returns newRound=true when the round completes (every sampler's second
// priority exceeds 2τ), in which case the caller must broadcast the doubled
// Threshold().
func (w *WRSampler) Offer(t int, e Prioritized) (newRound bool) {
	if t < 0 || t >= w.s {
		panic(fmt.Sprintf("sample: sampler index %d out of range %d", t, w.s))
	}
	switch {
	case e.Priority > w.top1[t]:
		w.top2[t] = w.top1[t]
		w.top1[t] = e.Priority
		w.elems[t] = e
	case e.Priority > w.top2[t]:
		w.top2[t] = e.Priority
	}
	if w.roundDone() {
		w.tau *= 2
		w.rounds++
		return true
	}
	return false
}

func (w *WRSampler) roundDone() bool {
	for t := 0; t < w.s; t++ {
		if w.top2[t] < 2*w.tau {
			return false
		}
	}
	return true
}

// EstimateTotal returns Ŵ = (1/s)·Σ_t ρ⁽²⁾_t, the unbiased estimate of the
// total stream weight.
func (w *WRSampler) EstimateTotal() float64 {
	var sum float64
	for t := 0; t < w.s; t++ {
		sum += w.top2[t]
	}
	return sum / float64(w.s)
}

// Sample returns the s sampled elements, each carrying the uniform adjusted
// weight Ŵ/s as per Section 4.3.1 (samplers that have seen nothing are
// skipped, which only happens on near-empty streams).
func (w *WRSampler) Sample() []Prioritized {
	what := w.EstimateTotal() / float64(w.s)
	out := make([]Prioritized, 0, w.s)
	for t := 0; t < w.s; t++ {
		if w.top1[t] == 0 {
			continue
		}
		e := w.elems[t]
		out = append(out, Prioritized{Key: e.Key, Weight: what, Priority: e.Priority, Payload: e.Payload})
	}
	return out
}

// EstimateKey returns the estimated weight of key: (#samplers holding key)·Ŵ/s.
func (w *WRSampler) EstimateKey(key uint64) float64 {
	var sum float64
	for _, e := range w.Sample() {
		if e.Key == key {
			sum += e.Weight
		}
	}
	return sum
}
