package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReservoirUnderfilled(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	r := NewReservoir(10)
	r.Offer(1, 2, nil, rng)
	r.Offer(2, 3, nil, rng)
	if r.Seen() != 2 || r.Total() != 5 {
		t.Fatalf("Seen=%d Total=%v", r.Seen(), r.Total())
	}
	s := r.Sample()
	if len(s) != 2 {
		t.Fatalf("underfilled sample size %d want 2", len(s))
	}
	if r.EstimateTotal() != 5 {
		t.Fatalf("EstimateTotal = %v want exact 5", r.EstimateTotal())
	}
	if r.Threshold() != 0 {
		t.Fatal("Threshold should be 0 while underfilled")
	}
}

func TestReservoirCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := NewReservoir(16)
	for i := 0; i < 1000; i++ {
		r.Offer(uint64(i), 1+rng.Float64(), nil, rng)
	}
	s := r.Sample()
	if len(s) != 15 { // k−1 after dropping the min-priority witness
		t.Fatalf("sample size %d want 15", len(s))
	}
}

// Property: the heap retains exactly the k largest priorities.
func TestReservoirKeepsTopPriorities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(12)
		r := NewReservoir(k)
		for i := 0; i < 300; i++ {
			r.Offer(uint64(i), 1+rng.Float64()*9, nil, rng)
		}
		// The discarded priorities are unobservable, so verify the
		// structural invariants: exact capacity and the min-heap property
		// (which is what guarantees the retained set is the top-k).
		if len(r.items) != k {
			return false
		}
		for i := range r.items {
			l, rt := 2*i+1, 2*i+2
			if l < k && r.items[l].Priority < r.items[i].Priority {
				return false
			}
			if rt < k && r.items[rt].Priority < r.items[i].Priority {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirEstimateUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const trials = 40
	var bias float64
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(200)
		var w float64
		for i := 0; i < 4000; i++ {
			wi := 1 + rng.Float64()*9
			w += wi
			r.Offer(uint64(i), wi, nil, rng)
		}
		bias += (r.EstimateTotal() - w) / w
	}
	bias /= trials
	if math.Abs(bias) > 0.03 {
		t.Fatalf("average relative bias %v", bias)
	}
}

func TestReservoirValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir(0)
}

func TestReservoirPayloadCarried(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := NewReservoir(2)
	r.Offer(7, 5, []float64{1, 2}, rng)
	s := r.Sample()
	found := false
	for _, e := range s {
		if e.Key == 7 && len(e.Payload) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("payload lost")
	}
}
