package quantile

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// exactRank computes the weighted rank of v (weight of items ≤ v).
type wv struct {
	v uint64
	w float64
}

func exactRank(items []wv, v uint64) float64 {
	var r float64
	for _, it := range items {
		if it.v <= v {
			r += it.w
		}
	}
	return r
}

func totalW(items []wv) float64 {
	var w float64
	for _, it := range items {
		w += it.w
	}
	return w
}

func randItems(rng *rand.Rand, n int, bits uint, beta float64) []wv {
	items := make([]wv, n)
	max := uint64(1) << bits
	for i := range items {
		items[i] = wv{v: rng.Uint64() % max, w: 1 + rng.Float64()*(beta-1)}
	}
	return items
}

func TestQDigestExactWhenUncompressed(t *testing.T) {
	q := NewQDigest(8, 0.1)
	q.Update(3, 5)
	q.Update(200, 2)
	q.Update(3, 1)
	if q.Weight() != 8 {
		t.Fatalf("Weight = %v", q.Weight())
	}
	lo, hi := q.RankBounds(3)
	if lo != 6 || hi != 6 {
		t.Fatalf("RankBounds(3) = [%v,%v] want [6,6] before compression", lo, hi)
	}
	if got := q.Quantile(0.5); got != 3 {
		t.Fatalf("median = %d want 3", got)
	}
	if got := q.Quantile(1.0); got != 200 {
		t.Fatalf("max quantile = %d want 200", got)
	}
}

// Property: after arbitrary weighted inserts and compressions, every rank
// query errs by at most εW.
func TestQDigestRankGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := uint(6 + rng.Intn(6))
		eps := 0.05 + rng.Float64()*0.2
		items := randItems(rng, 200+rng.Intn(2000), bits, 10)
		q := NewQDigest(bits, eps)
		for _, it := range items {
			q.Update(it.v, it.w)
		}
		q.Compress()
		w := totalW(items)
		// Probe 20 random values: true rank must lie within the bounds and
		// the bounds must be εW-tight.
		for trial := 0; trial < 20; trial++ {
			v := rng.Uint64() % (uint64(1) << bits)
			lo, hi := q.RankBounds(v)
			r := exactRank(items, v)
			if r < lo-1e-6 || r > hi+1e-6 {
				return false
			}
			if hi-lo > eps*w+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile queries return values whose exact rank is within εW
// of the target.
func TestQDigestQuantileGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const bits, eps = 10, 0.1
		items := randItems(rng, 3000, bits, 5)
		q := NewQDigest(bits, eps)
		for _, it := range items {
			q.Update(it.v, it.w)
		}
		w := totalW(items)
		for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			v := q.Quantile(phi)
			r := exactRank(items, v)
			// Exact rank of the returned value within [φW − εW, φW + εW];
			// the discrete value boundary can add one item's weight (≤ 5).
			if r < phi*w-eps*w-5 || r > phi*w+eps*w+5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQDigestSizeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const bits, eps = 12, 0.05
	q := NewQDigest(bits, eps)
	for i := 0; i < 50000; i++ {
		q.Update(rng.Uint64()%(1<<bits), 1+rng.Float64())
	}
	q.Compress()
	// q-digest bound: O(bits/ε) nodes (constant 8 covers the weighted
	// variant's slack from deferred compression).
	bound := int(8 * float64(bits) / eps)
	if q.Size() > bound {
		t.Fatalf("size %d exceeds O(bits/ε) bound %d", q.Size(), bound)
	}
}

func TestQDigestMergeGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const bits, eps = 8, 0.1
	a := NewQDigest(bits, eps)
	b := NewQDigest(bits, eps)
	itemsA := randItems(rng, 1500, bits, 8)
	itemsB := randItems(rng, 1500, bits, 8)
	for _, it := range itemsA {
		a.Update(it.v, it.w)
	}
	for _, it := range itemsB {
		b.Update(it.v, it.w)
	}
	a.Merge(b)
	all := append(append([]wv{}, itemsA...), itemsB...)
	w := totalW(all)
	if got := a.Weight(); got < w-1e-6 || got > w+1e-6 {
		t.Fatalf("merged weight %v want %v", got, w)
	}
	for trial := 0; trial < 20; trial++ {
		v := rng.Uint64() % (1 << bits)
		lo, hi := a.RankBounds(v)
		r := exactRank(all, v)
		if r < lo-1e-6 || r > hi+1e-6 {
			t.Fatalf("merged rank of %d: %v outside [%v,%v]", v, r, lo, hi)
		}
		// Merged error budget: sum of the two digests' budgets.
		if hi-lo > 2*eps*w+1e-6 {
			t.Fatalf("merged bounds too loose: %v", hi-lo)
		}
	}
}

func TestQDigestValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewQDigest(0, 0.1) },
		func() { NewQDigest(63, 0.1) },
		func() { NewQDigest(8, 0) },
		func() { NewQDigest(8, 0.1).Update(1<<8, 1) },
		func() { NewQDigest(8, 0.1).Update(1, -1) },
		func() { NewQDigest(8, 0.1).Quantile(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQDigestMergeBitsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQDigest(8, 0.1).Merge(NewQDigest(9, 0.1))
}

func TestQDigestEmptyAndReset(t *testing.T) {
	q := NewQDigest(8, 0.1)
	if q.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	q.Update(7, 3)
	q.Reset()
	if q.Weight() != 0 || q.Size() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestQDigestZeroWeightNoop(t *testing.T) {
	q := NewQDigest(8, 0.1)
	q.Update(1, 0)
	if q.Weight() != 0 || q.Size() != 0 {
		t.Fatal("zero weight should be no-op")
	}
}

func TestDepthAndRange(t *testing.T) {
	q := NewQDigest(3, 0.1) // universe [0,8)
	lo, hi := q.rangeOf(1)
	if lo != 0 || hi != 7 {
		t.Fatalf("root range [%d,%d]", lo, hi)
	}
	lo, hi = q.rangeOf(q.leaf(5))
	if lo != 5 || hi != 5 {
		t.Fatalf("leaf(5) range [%d,%d]", lo, hi)
	}
	if depth(1) != 0 || depth(q.leaf(0)) != 3 {
		t.Fatal("depth wrong")
	}
}

// Sanity check on sorted data: quantiles are monotone in φ.
func TestQDigestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := NewQDigest(10, 0.05)
	for i := 0; i < 5000; i++ {
		q.Update(rng.Uint64()%1024, 1)
	}
	var prev uint64
	for _, phi := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		v := q.Quantile(phi)
		if v < prev {
			t.Fatalf("quantiles not monotone at φ=%v: %d < %d", phi, v, prev)
		}
		prev = v
	}
	// And on fully sorted exact data the median is near 512.
	med := q.Quantile(0.5)
	if med < 400 || med > 624 {
		t.Fatalf("median %d far from 512 on uniform data", med)
	}
	_ = sort.SearchInts
}
