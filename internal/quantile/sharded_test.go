package quantile

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
)

// Sharded quantile property harness, mirroring internal/hh's. The contract:
//
//  1. one shard is the identity: a Sharded wrapper with P = 1 answers every
//     quantile query exactly like the bare tracker, with identical tallies
//     and an identical shard snapshot (the merged view absorbs the single
//     coordinator digest without compressing, so even the node structure
//     matches);
//  2. merge soundness: for any P the merged rank error stays within εW at
//     mid-stream merge points (per-shard q-digest errors add, Σ ε·W_k = εW);
//  3. snapshot/restore round-trips bit-exactly and resumes the trajectory;
//  4. parameter mismatches at the merge boundary return wrapped
//     ErrMergeMismatch instead of panicking.

func feedShardedValues(s *Sharded, items []wv, m, run int) {
	batch := make([]gen.WeightedItem, 0, run)
	for start := 0; start < len(items); start += run {
		end := start + run
		if end > len(items) {
			end = len(items)
		}
		batch = batch[:0]
		for _, it := range items[start:end] {
			batch = append(batch, gen.WeightedItem{Elem: it.v, Weight: it.w})
		}
		s.ProcessItems((start/run)%m, batch)
	}
}

func feedBareValues(t *Tracker, items []wv, m, run int) {
	for i, it := range items {
		t.Process((i/run)%m, it.v, it.w)
	}
}

// TestShardedQuantileOneShardIdentity holds property 1 across a fine φ
// grid.
func TestShardedQuantileOneShardIdentity(t *testing.T) {
	const m, eps, bits, run = 4, 0.1, 10, 64
	rng := rand.New(rand.NewSource(21))
	items := randItems(rng, 12000, bits, 10)
	bare := NewTracker(m, eps, bits)
	sharded := NewSharded(1, m, func(int) *Tracker { return NewTracker(m, eps, bits) })
	defer sharded.Close()
	feedBareValues(bare, items, m, run)
	feedShardedValues(sharded, items, m, run)

	for phi := 0.05; phi < 1; phi += 0.05 {
		if a, b := bare.Quantile(phi), sharded.Quantile(phi); a != b {
			t.Errorf("φ=%.2f: one-shard Quantile = %d, bare %d", phi, b, a)
		}
	}
	if a, b := bare.EstimateTotal(), sharded.EstimateTotal(); a != b {
		t.Errorf("one-shard total %v, bare %v", b, a)
	}
	if a, b := bare.Stats(), sharded.Stats(); a != b {
		t.Errorf("one-shard tallies diverge:\nbare:    %v\nsharded: %v", a, b)
	}
	snap, err := SnapshotSharded(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Snapshot(), snap.Shards[0]) {
		t.Error("one-shard snapshot diverges from bare tracker")
	}
	if got, want := sharded.Eps(), eps; got != want {
		t.Errorf("Eps() = %v, want %v", got, want)
	}
	if got, want := sharded.Bits(), uint(bits); got != want {
		t.Errorf("Bits() = %v, want %v", got, want)
	}
}

// TestShardedQuantileRankBound holds property 2 for P ∈ {2, 3, 4}: at a
// mid-stream merge point and at the end, every returned quantile's exact
// rank is within εW of φW, and the merged total within εW of W.
func TestShardedQuantileRankBound(t *testing.T) {
	const m, eps, bits, run = 5, 0.1, 10, 41
	rng := rand.New(rand.NewSource(22))
	items := randItems(rng, 20000, bits, 15)
	for _, p := range []int{2, 3, 4} {
		sharded := NewSharded(p, m, func(int) *Tracker { return NewTracker(m, eps, bits) })
		half := len(items) / 2
		feedShardedValues(sharded, items[:half], m, run)
		assertRankBound(t, "mid-stream", p, sharded, items[:half], eps)
		feedShardedValues(sharded, items[half:], m, run)
		assertRankBound(t, "end", p, sharded, items, eps)
		sharded.Close()
	}
}

func assertRankBound(t *testing.T, instant string, p int, s *Sharded, prefix []wv, eps float64) {
	t.Helper()
	w := totalW(prefix)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		v := s.Quantile(phi)
		r := exactRank(prefix, v)
		if r < (phi-eps)*w-20 || r > (phi+eps)*w+20 {
			t.Fatalf("P=%d %s φ=%v: value %d has rank %v, want within εW of %v", p, instant, phi, v, r, phi*w)
		}
	}
	if got := s.EstimateTotal(); got < (1-eps)*w || got > w+1e-6 {
		t.Fatalf("P=%d %s: total %v vs W=%v", p, instant, got, w)
	}
}

// TestShardedQuantilePersistRoundTrip holds property 3 (gob round-trip,
// resumed trajectory) and property 4 on corrupted snapshots.
func TestShardedQuantilePersistRoundTrip(t *testing.T) {
	const m, eps, bits, p, run = 3, 0.1, 10, 3, 29
	rng := rand.New(rand.NewSource(23))
	items := randItems(rng, 9000, bits, 8)
	orig := NewSharded(p, m, func(int) *Tracker { return NewTracker(m, eps, bits) })
	defer orig.Close()
	half := len(items) / 2
	feedShardedValues(orig, items[:half], m, run)

	snap, err := SnapshotSharded(orig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	var decoded ShardedTrackerSnapshot
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSharded(decoded)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	resnap, err := SnapshotSharded(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, resnap) {
		t.Fatal("restored snapshot diverges from saved snapshot")
	}
	feedShardedValues(orig, items[half:], m, run)
	feedShardedValues(restored, items[half:], m, run)
	a, err := SnapshotSharded(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SnapshotSharded(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("post-restore ingestion diverges from the original trajectory")
	}

	// Cross-shard parameter disagreement: wrapped ErrMergeMismatch.
	bad := decoded
	bad.Shards = append([]TrackerSnapshot(nil), decoded.Shards...)
	bad.Shards[1].Bits = bits + 1
	if _, err := RestoreSharded(bad); !errors.Is(err, ErrMergeMismatch) {
		t.Errorf("mismatched shard bits: err = %v, want ErrMergeMismatch", err)
	}
	cursor := decoded
	cursor.Next = p
	if _, err := RestoreSharded(cursor); err == nil || errors.Is(err, ErrMergeMismatch) {
		t.Errorf("out-of-range deal cursor: err = %v, want a plain restore error", err)
	}
}

// TestAccumulateIntoMismatch pins property 4 at the AccumulateInto
// boundary directly, and the universe validation on the sharded ingest
// path.
func TestAccumulateIntoMismatch(t *testing.T) {
	tr := NewTracker(2, 0.1, 8)
	tr.Process(0, 3, 1)
	dst := NewQDigest(10, 0.05) // wrong universe
	if _, err := tr.AccumulateInto(dst); !errors.Is(err, ErrMergeMismatch) {
		t.Fatalf("bits 8 into bits 10: err = %v, want ErrMergeMismatch", err)
	}
	ok := NewQDigest(8, 0.05)
	tally, err := tr.AccumulateInto(ok)
	if err != nil {
		t.Fatal(err)
	}
	if tally != tr.EstimateTotal() {
		t.Fatalf("AccumulateInto tally = %v, want %v", tally, tr.EstimateTotal())
	}

	s := NewSharded(2, 2, func(int) *Tracker { return NewTracker(2, 0.1, 8) })
	defer s.Close()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("out-of-universe value", func() { s.Process(0, 1<<8, 1) })
	mustPanic("out-of-universe batch", func() {
		s.ProcessItems(0, []gen.WeightedItem{{Elem: 1, Weight: 1}, {Elem: 1 << 8, Weight: 1}})
	})
	s.Flush()
	if got := s.EstimateTotal(); got != 0 {
		t.Fatalf("rejected batches leaked weight %v into the shards", got)
	}
}
