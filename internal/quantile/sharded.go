package quantile

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stream"
)

// ErrMergeMismatch is the sentinel for digests whose universes disagree at
// a tracker-level merge boundary. It can only arise from a corrupted or
// hand-assembled snapshot — shards built by one builder always agree — so
// the merge surfaces return it wrapped rather than panicking.
var ErrMergeMismatch = errors.New("quantile: digest parameters mismatch")

// Summary is the query surface shared by Tracker and Sharded: everything
// the session facade needs from a quantile tracker, independent of whether
// it runs one instance or a shard fleet.
type Summary interface {
	Eps() float64
	Bits() uint
	Process(site int, value uint64, w float64)
	Quantile(phi float64) uint64
	EstimateTotal() float64
	Stats() stream.Stats
}

// Sharded runs P independent copies of the quantile tracker, dealing the
// stream across them with core.ShardedItemTracker and answering rank
// queries from the merged coordinator digest. Each shard tracks its
// substream with rank error ≤ ε·W_k; q-digest accumulation adds both
// weight and error, and Σ ε·W_k = εW — so the merged view keeps the
// tracker's εW rank contract. Communication tallies sum over shards, so
// Stats can grow by up to a factor of P versus one tracker.
//
// Like Tracker, a Sharded instance is driven by one goroutine at a time.
// Queries flush (merge barrier) first; Close stops the shard workers.
type Sharded struct {
	m    int
	eps  float64
	bits uint
	st   *core.ShardedItemTracker
}

// NewSharded builds a sharded quantile tracker over p shard trackers for m
// sites, produced by build (called once per shard index). All shards must
// come from the same constructor with the same parameters.
func NewSharded(p, m int, build func(shard int) *Tracker) *Sharded {
	trackers := make([]*Tracker, p)
	st := core.NewShardedItemTracker(p, m, func(shard int) core.ItemShard {
		trackers[shard] = build(shard)
		return trackers[shard]
	})
	return &Sharded{m: m, eps: trackers[0].eps, bits: trackers[0].bits, st: st}
}

// newShardedFromTrackers wires restored shard trackers back into the deal
// machinery (the snapshot restore path).
func newShardedFromTrackers(m int, trackers []*Tracker) *Sharded {
	st := core.NewShardedItemTracker(len(trackers), m, func(shard int) core.ItemShard {
		return trackers[shard]
	})
	return &Sharded{m: m, eps: trackers[0].eps, bits: trackers[0].bits, st: st}
}

// Eps implements Summary: the merged view keeps the shard ε (summed
// per-shard bounds telescope to εW).
func (s *Sharded) Eps() float64 { return s.eps }

// Bits implements Summary.
func (s *Sharded) Bits() uint { return s.bits }

// Sites returns the site count m.
func (s *Sharded) Sites() int { return s.m }

// Process implements Summary, dealing one value to the shard workers. The
// value is validated against the universe here, synchronously, so an
// invalid value panics in the caller instead of poisoning a shard worker.
func (s *Sharded) Process(site int, value uint64, w float64) {
	s.checkValue(value)
	s.st.Process(site, value, w)
}

// ProcessItems deals a same-site batch across the shard workers. The whole
// batch — sites, weights, and universe membership — is validated before
// anything is enqueued, so a rejected batch never partially applies.
func (s *Sharded) ProcessItems(site int, items []gen.WeightedItem) {
	for _, it := range items {
		s.checkValue(it.Elem)
	}
	s.st.ProcessItems(site, items)
}

func (s *Sharded) checkValue(v uint64) {
	if v >= uint64(1)<<s.bits {
		panic(fmt.Sprintf("quantile: value %d outside universe [0, 2^%d)", v, s.bits))
	}
}

// merged flushes and folds every shard's coordinator digest into a fresh
// uncompressed accumulation digest. A universe mismatch is impossible for
// builder-constructed shards and rejected during snapshot restore, so a
// failure here is a program bug and panics with the wrapped error.
func (s *Sharded) merged() (*QDigest, float64) {
	s.st.Flush()
	dst := NewQDigest(s.bits, s.eps/2)
	var tally float64
	for i := 0; i < s.st.ShardCount(); i++ {
		tl, err := s.st.Shard(i).(*Tracker).AccumulateInto(dst)
		if err != nil {
			panic(err)
		}
		tally += tl
	}
	return dst, tally
}

// Quantile implements Summary from the merged coordinator digest.
func (s *Sharded) Quantile(phi float64) uint64 {
	dst, _ := s.merged()
	return dst.Quantile(phi)
}

// EstimateTotal implements Summary: the summed shard tallies.
func (s *Sharded) EstimateTotal() float64 {
	_, tally := s.merged()
	return tally
}

// Stats implements Summary: a flush barrier, then the summed shard
// tallies.
func (s *Sharded) Stats() stream.Stats { return s.st.Stats() }

// StatsApplied returns the summed shard tallies without the flush barrier
// (the monitoring read; may trail enqueued work).
func (s *Sharded) StatsApplied() stream.Stats { return s.st.StatsApplied() }

// Flush waits until every dealt item has been applied, re-raising any
// shard panic in the caller.
func (s *Sharded) Flush() { s.st.Flush() }

// FlushErr is the non-panicking barrier for checkpointers: it returns the
// first shard panic instead of re-raising it.
func (s *Sharded) FlushErr() any { return s.st.FlushErr() }

// Close flushes and stops the shard workers; queries keep working,
// further ingestion panics. Idempotent.
func (s *Sharded) Close() { s.st.Close() }

// ShardCount returns P.
func (s *Sharded) ShardCount() int { return s.st.ShardCount() }

// ShardItems returns the per-shard dealt item counts (the /metrics view).
func (s *Sharded) ShardItems() []int64 { return s.st.ShardItems() }

// Shard returns shard i's tracker, for snapshotting after a flush.
func (s *Sharded) Shard(i int) *Tracker { return s.st.Shard(i).(*Tracker) }

var (
	_ Summary = (*Tracker)(nil)
	_ Summary = (*Sharded)(nil)
)
