// Package quantile implements ε-approximate weighted quantiles over
// distributed streams: a deterministic, mergeable q-digest summary
// (Shrivastava et al., SenSys 2004, generalized to real-valued weights) and
// a distributed tracking protocol built on the same batched-summary
// skeleton as the paper's P1 — the quantile sibling of heavy-hitters
// tracking that the paper's related-work section discusses (Yi–Zhang track
// both with one protocol family).
//
// Guarantee: for any rank query q ∈ [0,1], the returned value v satisfies
//
//	rank(v) ∈ [qW − εW, qW + εW]
//
// where rank is the weighted rank in the stream and W the total weight.
package quantile

import (
	"fmt"
	"sort"
)

// QDigest is a weighted q-digest over the bounded universe [0, 2^bits).
// The digest stores weight against dyadic ranges of the universe; ranges
// are pushed toward the root by compression, which bounds the summary at
// O((bits/ε)) nodes while every value's weight stays within an ancestor
// range — so rank queries err by at most the compression budget εW.
type QDigest struct {
	bits uint // universe is [0, 1<<bits)
	eps  float64
	// counts maps a dyadic node id to its weight. Node ids follow the
	// standard heap convention: 1 is the root covering the whole universe,
	// node n has children 2n and 2n+1, and the leaves (at depth bits)
	// cover single values.
	counts map[uint64]float64
	weight float64
	// compressAt defers compression until the node count doubles, keeping
	// Update amortized O(1) map operations plus O(size) per compression.
	compressAt int
}

// CheckDigestParams reports whether (bits, eps) are valid q-digest
// parameters. The public facade turns a non-nil result into its typed
// configuration error; the panicking constructors funnel through it too.
func CheckDigestParams(bits uint, eps float64) error {
	if bits < 1 || bits > 62 {
		return fmt.Errorf("quantile: need 1 ≤ bits ≤ 62, got %d", bits)
	}
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("quantile: need 0 < ε < 1, got %v", eps)
	}
	return nil
}

// NewQDigest builds a digest for values in [0, 2^bits) with rank error εW.
func NewQDigest(bits uint, eps float64) *QDigest {
	if err := CheckDigestParams(bits, eps); err != nil {
		panic(err.Error())
	}
	return &QDigest{
		bits:       bits,
		eps:        eps,
		counts:     make(map[uint64]float64),
		compressAt: 64,
	}
}

// Bits returns the universe size exponent.
func (q *QDigest) Bits() uint { return q.bits }

// Eps returns the rank error parameter.
func (q *QDigest) Eps() float64 { return q.eps }

// Weight returns the total inserted weight.
func (q *QDigest) Weight() float64 { return q.weight }

// Size returns the number of stored nodes.
func (q *QDigest) Size() int { return len(q.counts) }

// leaf returns the node id of the leaf covering value v.
func (q *QDigest) leaf(v uint64) uint64 { return (uint64(1) << q.bits) | v }

// Update inserts value v with weight w.
func (q *QDigest) Update(v uint64, w float64) {
	if v >= uint64(1)<<q.bits {
		panic(fmt.Sprintf("quantile: value %d outside universe [0, 2^%d)", v, q.bits))
	}
	if w < 0 {
		panic(fmt.Sprintf("quantile: negative weight %v", w))
	}
	if w == 0 {
		return
	}
	q.counts[q.leaf(v)] += w
	q.weight += w
	if len(q.counts) >= q.compressAt {
		q.Compress()
	}
}

// Compress enforces the q-digest size bound: any node whose subtree triple
// (node + sibling + parent) carries less than the per-node budget
// εW/bits is merged into its parent. Compression only moves weight to
// ancestors, which is what keeps rank error one-sided per node and ≤ εW in
// total.
func (q *QDigest) Compress() {
	if q.weight == 0 {
		return
	}
	budget := q.eps * q.weight / float64(q.bits)
	// Process deepest nodes first so freed weight can cascade upward.
	nodes := make([]uint64, 0, len(q.counts))
	for n := range q.counts {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] > nodes[j] })
	for _, n := range nodes {
		if n <= 1 {
			continue // the root absorbs everything
		}
		c, ok := q.counts[n]
		if !ok {
			continue // already merged as a sibling
		}
		sib := n ^ 1
		parent := n >> 1
		total := c + q.counts[sib] + q.counts[parent]
		if total < budget {
			q.counts[parent] = total
			delete(q.counts, n)
			delete(q.counts, sib)
		}
	}
	q.compressAt = 2 * (len(q.counts) + 32)
}

// depth returns the depth of node n (root = 0, leaves = bits).
func depth(n uint64) uint {
	d := uint(0)
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}

// rangeOf returns the universe interval [lo, hi] covered by node n.
func (q *QDigest) rangeOf(n uint64) (lo, hi uint64) {
	d := depth(n)
	span := uint64(1) << (q.bits - d)
	idx := n - (uint64(1) << d) // position among depth-d nodes
	lo = idx * span
	return lo, lo + span - 1
}

// Quantile returns a value whose weighted rank approximates phi·W within
// ±εW. phi ∈ [0, 1].
func (q *QDigest) Quantile(phi float64) uint64 {
	if phi < 0 || phi > 1 {
		panic(fmt.Sprintf("quantile: need 0 ≤ φ ≤ 1, got %v", phi))
	}
	if len(q.counts) == 0 {
		return 0
	}
	// Order nodes by (hi, depth descending): the standard q-digest
	// post-order traversal, so accumulating weights scans values in
	// nondecreasing order of their upper bounds.
	type entry struct {
		node   uint64
		hi     uint64
		d      uint
		weight float64
	}
	entries := make([]entry, 0, len(q.counts))
	for n, c := range q.counts {
		_, hi := q.rangeOf(n)
		entries = append(entries, entry{node: n, hi: hi, d: depth(n), weight: c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hi != entries[j].hi {
			return entries[i].hi < entries[j].hi
		}
		return entries[i].d > entries[j].d
	})
	target := phi * q.weight
	var acc float64
	for _, e := range entries {
		acc += e.weight
		if acc >= target {
			return e.hi
		}
	}
	return entries[len(entries)-1].hi
}

// RankBounds returns lower and upper bounds on the weighted rank of value v
// (the weight of items ≤ v). The true rank lies in [lo, hi], and
// hi − lo ≤ εW after compression.
func (q *QDigest) RankBounds(v uint64) (lo, hi float64) {
	for n, c := range q.counts {
		nlo, nhi := q.rangeOf(n)
		switch {
		case nhi <= v:
			lo += c
			hi += c
		case nlo <= v:
			hi += c // straddling range: may or may not be ≤ v
		}
	}
	return lo, hi
}

// Merge folds other into q. Both digests must share bits; the error
// parameters add in the usual mergeable-summary sense (each digest's
// compression debt is bounded by its own εW share). The sketch-level merge
// panics on a universe mismatch like every other invalid-argument path in
// this package; Tracker.AccumulateInto is the error-returning boundary the
// service-reachable shard merges go through.
func (q *QDigest) Merge(other *QDigest) {
	if q.bits != other.bits {
		panic(fmt.Sprintf("quantile: merge digests with bits %d and %d", other.bits, q.bits))
	}
	q.absorb(other)
	q.Compress()
}

// absorb adds other's nodes and weight without compressing. The sharded
// merged query view uses it directly so a one-shard tracker's view is
// node-for-node identical to the shard's own digest (compressing here
// would add fresh compression debt the unsharded tracker doesn't have).
func (q *QDigest) absorb(other *QDigest) {
	for n, c := range other.counts {
		q.counts[n] += c
	}
	q.weight += other.weight
}

// Reset clears the digest.
func (q *QDigest) Reset() {
	q.counts = make(map[uint64]float64)
	q.weight = 0
	q.compressAt = 64
}
