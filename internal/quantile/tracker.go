package quantile

import (
	"fmt"

	"repro/internal/stream"
)

// Tracker continuously maintains ε-approximate weighted quantiles of a
// distributed stream at the coordinator, using the paper's P1 skeleton
// (batched mergeable summaries with an estimate side-channel): each site
// runs a q-digest with error ε/2 and ships it when its unsent weight
// reaches (ε/2m)·Ŵ; the coordinator merges and re-broadcasts Ŵ when its
// tally grows past (1+ε/2)·Ŵ.
//
// Guarantee: every quantile query errs by at most εW in rank — the merge
// error (≤ εW/2) plus the unshipped site weight (≤ εW/2), exactly the
// Lemma 2 argument with q-digest in place of Misra–Gries.
// Communication: O((m/ε²)·log(βN)·log U) scalar messages.
type Tracker struct {
	m    int
	eps  float64
	bits uint
	acct *stream.Accountant

	sites []trackerSite
	// Coordinator state.
	merged *QDigest
	tally  float64
	what   float64
}

type trackerSite struct {
	digest *QDigest
	weight float64
}

// CheckParams reports whether (m, eps, bits) are valid tracker parameters.
func CheckParams(m int, eps float64, bits uint) error {
	if m < 1 {
		return fmt.Errorf("quantile: need m ≥ 1 sites, got %d", m)
	}
	return CheckDigestParams(bits, eps)
}

// NewTracker builds the protocol for m sites with rank error ε over the
// value universe [0, 2^bits).
func NewTracker(m int, eps float64, bits uint) *Tracker {
	if err := CheckParams(m, eps, bits); err != nil {
		// Panic with the error value itself so a recovering caller keeps
		// the wrapped chain (errors.Is still works on the recovered value).
		panic(err)
	}
	t := &Tracker{
		m:      m,
		eps:    eps,
		bits:   bits,
		acct:   stream.NewAccountant(m),
		sites:  make([]trackerSite, m),
		merged: NewQDigest(bits, eps/2),
		what:   1,
	}
	for i := range t.sites {
		t.sites[i].digest = NewQDigest(bits, eps/2)
	}
	return t
}

// Eps returns the rank error parameter.
func (t *Tracker) Eps() float64 { return t.eps }

// Process delivers one weighted value to a site.
func (t *Tracker) Process(site int, value uint64, w float64) {
	if site < 0 || site >= t.m {
		panic(fmt.Sprintf("quantile: site %d out of range [0,%d)", site, t.m))
	}
	if w <= 0 {
		panic(fmt.Sprintf("quantile: need positive weight, got %v", w))
	}
	s := &t.sites[site]
	s.digest.Update(value, w)
	s.weight += w
	if s.weight >= (t.eps/(2*float64(t.m)))*t.what {
		t.ship(site)
	}
}

func (t *Tracker) ship(site int) {
	s := &t.sites[site]
	s.digest.Compress()
	// One message per digest node, with the weight scalar piggybacked.
	n := s.digest.Size()
	if n < 1 {
		n = 1
	}
	t.acct.SendUpN(n, 1)

	t.merged.Merge(s.digest)
	t.tally += s.weight
	s.digest.Reset()
	s.weight = 0

	if t.tally/t.what > 1+t.eps/2 {
		t.what = t.tally
		t.acct.Broadcast(1)
	}
}

// Quantile answers a φ-quantile query at the coordinator.
func (t *Tracker) Quantile(phi float64) uint64 { return t.merged.Quantile(phi) }

// EstimateTotal returns the coordinator's weight tally.
func (t *Tracker) EstimateTotal() float64 { return t.tally }

// Stats returns the communication tally.
func (t *Tracker) Stats() stream.Stats { return t.acct.Stats() }

// Bits returns the universe size exponent.
func (t *Tracker) Bits() uint { return t.bits }

// AccumulateInto is the tracker-level merge surface: it folds the
// coordinator digest into dst (without compressing, so a one-shard merge
// is node-identical to the shard's own digest) and returns the
// coordinator tally. A universe mismatch returns a wrapped
// ErrMergeMismatch instead of panicking — this is the boundary
// service-reachable shard merges cross, and a daemon restoring a bad
// checkpoint must survive it.
func (t *Tracker) AccumulateInto(dst *QDigest) (tally float64, err error) {
	if dst.bits != t.bits {
		return 0, fmt.Errorf("quantile: accumulating digest with bits %d into bits %d: %w",
			t.bits, dst.bits, ErrMergeMismatch)
	}
	dst.absorb(t.merged)
	return t.tally, nil
}
