package quantile

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

func feedTracker(t *Tracker, items []wv, m int, seed int64) {
	asg := stream.NewUniformRandom(m, seed)
	for _, it := range items {
		t.Process(asg.Next(), it.v, it.w)
	}
}

func TestTrackerQuantileGuarantee(t *testing.T) {
	const m, eps, bits = 8, 0.1, 10
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 30000, bits, 20)
	tr := NewTracker(m, eps, bits)
	feedTracker(tr, items, m, 2)

	w := totalW(items)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		v := tr.Quantile(phi)
		r := exactRank(items, v)
		if r < (phi-eps)*w-20 || r > (phi+eps)*w+20 {
			t.Fatalf("φ=%v: value %d has rank %v, want within εW of %v", phi, v, r, phi*w)
		}
	}
	if got := tr.EstimateTotal(); got < (1-eps)*w || got > w+1e-6 {
		t.Fatalf("total %v vs %v", got, w)
	}
}

func TestTrackerCommunicationSublinear(t *testing.T) {
	const m, eps, bits = 8, 0.1, 10
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 50000, bits, 10)
	tr := NewTracker(m, eps, bits)
	feedTracker(tr, items, m, 4)
	if tr.Stats().Total() >= int64(len(items)) {
		t.Fatalf("tracker sent %d messages for %d items", tr.Stats().Total(), len(items))
	}
	if tr.Stats().Total() == 0 {
		t.Fatal("tracker never communicated")
	}
}

func TestTrackerContinuous(t *testing.T) {
	// The guarantee must hold at intermediate instants too.
	const m, eps, bits = 4, 0.15, 8
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 8000, bits, 5)
	tr := NewTracker(m, eps, bits)
	asg := stream.NewUniformRandom(m, 6)
	var seen []wv
	for i, it := range items {
		tr.Process(asg.Next(), it.v, it.w)
		seen = append(seen, it)
		if (i+1)%2000 != 0 {
			continue
		}
		w := totalW(seen)
		v := tr.Quantile(0.5)
		r := exactRank(seen, v)
		if r < (0.5-eps)*w-10 || r > (0.5+eps)*w+10 {
			t.Fatalf("instant %d: median rank %v outside εW of %v", i+1, r, 0.5*w)
		}
	}
}

func TestTrackerValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTracker(0, 0.1, 8) },
		func() { NewTracker(2, 0, 8) },
		func() { NewTracker(2, 0.1, 8).Process(5, 1, 1) },
		func() { NewTracker(2, 0.1, 8).Process(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	if NewTracker(2, 0.1, 8).Eps() != 0.1 {
		t.Fatal("Eps accessor wrong")
	}
}
