package quantile

import (
	"fmt"

	"repro/internal/stream"
)

// Checkpoint/restore for the quantile summary and tracker. Snapshots are
// plain exported structs (gob/JSON-encodable); a restored tracker resumes
// exactly where the snapshot was taken, preserving the continuous εW rank
// guarantee and the communication tally.

// QDigestSnapshot is the serializable state of a QDigest. CompressAt is
// part of the state: the deferred-compression schedule must resume exactly
// where it was, or a restored digest's structure drifts from the live one
// on further ingestion.
type QDigestSnapshot struct {
	Bits       uint
	Eps        float64
	Weight     float64
	Counts     map[uint64]float64
	CompressAt int
}

// Snapshot captures the digest's state.
func (q *QDigest) Snapshot() QDigestSnapshot {
	counts := make(map[uint64]float64, len(q.counts))
	for n, c := range q.counts {
		counts[n] = c
	}
	return QDigestSnapshot{
		Bits: q.bits, Eps: q.eps, Weight: q.weight, Counts: counts,
		CompressAt: q.compressAt,
	}
}

// RestoreQDigest rebuilds a digest from a snapshot.
func RestoreQDigest(snap QDigestSnapshot) (*QDigest, error) {
	if err := CheckDigestParams(snap.Bits, snap.Eps); err != nil {
		return nil, err
	}
	q := &QDigest{
		bits:   snap.Bits,
		eps:    snap.Eps,
		weight: snap.Weight,
		counts: make(map[uint64]float64, len(snap.Counts)),
	}
	maxNode := uint64(1)<<(snap.Bits+1) - 1
	for n, c := range snap.Counts {
		if n < 1 || n > maxNode {
			return nil, fmt.Errorf("quantile: snapshot node %d outside the %d-bit dyadic tree", n, snap.Bits)
		}
		if c < 0 {
			return nil, fmt.Errorf("quantile: snapshot node %d has negative weight %v", n, c)
		}
		q.counts[n] = c
	}
	q.compressAt = snap.CompressAt
	if q.compressAt <= 0 {
		// Pre-CompressAt snapshot: fall back to the post-compression value.
		q.compressAt = 2 * (len(q.counts) + 32)
	}
	return q, nil
}

// TrackerSiteSnapshot is the serializable state of one tracked site.
type TrackerSiteSnapshot struct {
	Digest QDigestSnapshot
	Weight float64
}

// TrackerSnapshot is the serializable state of a Tracker.
type TrackerSnapshot struct {
	M     int
	Eps   float64
	Bits  uint
	Sites []TrackerSiteSnapshot
	// Coordinator state.
	Merged QDigestSnapshot
	Tally  float64
	What   float64
	Stats  stream.Stats
}

// Snapshot captures the tracker's state.
func (t *Tracker) Snapshot() TrackerSnapshot {
	sites := make([]TrackerSiteSnapshot, len(t.sites))
	for i := range t.sites {
		sites[i] = TrackerSiteSnapshot{
			Digest: t.sites[i].digest.Snapshot(),
			Weight: t.sites[i].weight,
		}
	}
	return TrackerSnapshot{
		M: t.m, Eps: t.eps, Bits: t.bits, Sites: sites,
		Merged: t.merged.Snapshot(), Tally: t.tally, What: t.what,
		Stats: t.acct.Stats(),
	}
}

// RestoreTracker rebuilds a tracker from a snapshot.
func RestoreTracker(snap TrackerSnapshot) (*Tracker, error) {
	if err := CheckParams(snap.M, snap.Eps, snap.Bits); err != nil {
		return nil, err
	}
	if len(snap.Sites) != snap.M {
		return nil, fmt.Errorf("quantile: snapshot has %d sites for m=%d", len(snap.Sites), snap.M)
	}
	t := NewTracker(snap.M, snap.Eps, snap.Bits)
	merged, err := RestoreQDigest(snap.Merged)
	if err != nil {
		return nil, fmt.Errorf("quantile: coordinator digest: %w", err)
	}
	if merged.bits != snap.Bits {
		return nil, fmt.Errorf("quantile: coordinator digest over %d bits, tracker over %d", merged.bits, snap.Bits)
	}
	t.merged = merged
	t.tally = snap.Tally
	t.what = snap.What
	for i, s := range snap.Sites {
		d, err := RestoreQDigest(s.Digest)
		if err != nil {
			return nil, fmt.Errorf("quantile: site %d digest: %w", i, err)
		}
		if d.bits != snap.Bits {
			return nil, fmt.Errorf("quantile: site %d digest over %d bits, tracker over %d", i, d.bits, snap.Bits)
		}
		t.sites[i].digest = d
		t.sites[i].weight = s.Weight
	}
	t.acct.RestoreStats(snap.Stats)
	return t, nil
}
