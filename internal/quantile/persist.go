package quantile

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stream"
)

// Checkpoint/restore for the quantile summary and tracker. Snapshots are
// plain exported structs (gob/JSON-encodable); a restored tracker resumes
// exactly where the snapshot was taken, preserving the continuous εW rank
// guarantee and the communication tally.

// QDigestSnapshot is the serializable state of a QDigest. CompressAt is
// part of the state: the deferred-compression schedule must resume exactly
// where it was, or a restored digest's structure drifts from the live one
// on further ingestion.
type QDigestSnapshot struct {
	Bits       uint
	Eps        float64
	Weight     float64
	Counts     map[uint64]float64
	CompressAt int
}

// Snapshot captures the digest's state.
func (q *QDigest) Snapshot() QDigestSnapshot {
	counts := make(map[uint64]float64, len(q.counts))
	for n, c := range q.counts {
		counts[n] = c
	}
	return QDigestSnapshot{
		Bits: q.bits, Eps: q.eps, Weight: q.weight, Counts: counts,
		CompressAt: q.compressAt,
	}
}

// RestoreQDigest rebuilds a digest from a snapshot.
func RestoreQDigest(snap QDigestSnapshot) (*QDigest, error) {
	if err := CheckDigestParams(snap.Bits, snap.Eps); err != nil {
		return nil, err
	}
	q := &QDigest{
		bits:   snap.Bits,
		eps:    snap.Eps,
		weight: snap.Weight,
		counts: make(map[uint64]float64, len(snap.Counts)),
	}
	maxNode := uint64(1)<<(snap.Bits+1) - 1
	for n, c := range snap.Counts {
		if n < 1 || n > maxNode {
			return nil, fmt.Errorf("quantile: snapshot node %d outside the %d-bit dyadic tree", n, snap.Bits)
		}
		if c < 0 {
			return nil, fmt.Errorf("quantile: snapshot node %d has negative weight %v", n, c)
		}
		q.counts[n] = c
	}
	q.compressAt = snap.CompressAt
	if q.compressAt <= 0 {
		// Pre-CompressAt snapshot: fall back to the post-compression value.
		q.compressAt = 2 * (len(q.counts) + 32)
	}
	return q, nil
}

// TrackerSiteSnapshot is the serializable state of one tracked site.
type TrackerSiteSnapshot struct {
	Digest QDigestSnapshot
	Weight float64
}

// TrackerSnapshot is the serializable state of a Tracker.
type TrackerSnapshot struct {
	M     int
	Eps   float64
	Bits  uint
	Sites []TrackerSiteSnapshot
	// Coordinator state.
	Merged QDigestSnapshot
	Tally  float64
	What   float64
	Stats  stream.Stats
}

// Snapshot captures the tracker's state.
func (t *Tracker) Snapshot() TrackerSnapshot {
	sites := make([]TrackerSiteSnapshot, len(t.sites))
	for i := range t.sites {
		sites[i] = TrackerSiteSnapshot{
			Digest: t.sites[i].digest.Snapshot(),
			Weight: t.sites[i].weight,
		}
	}
	return TrackerSnapshot{
		M: t.m, Eps: t.eps, Bits: t.bits, Sites: sites,
		Merged: t.merged.Snapshot(), Tally: t.tally, What: t.what,
		Stats: t.acct.Stats(),
	}
}

// RestoreTracker rebuilds a tracker from a snapshot.
func RestoreTracker(snap TrackerSnapshot) (*Tracker, error) {
	if err := CheckParams(snap.M, snap.Eps, snap.Bits); err != nil {
		return nil, err
	}
	if len(snap.Sites) != snap.M {
		return nil, fmt.Errorf("quantile: snapshot has %d sites for m=%d", len(snap.Sites), snap.M)
	}
	t := NewTracker(snap.M, snap.Eps, snap.Bits)
	merged, err := RestoreQDigest(snap.Merged)
	if err != nil {
		return nil, fmt.Errorf("quantile: coordinator digest: %w", err)
	}
	if merged.bits != snap.Bits {
		return nil, fmt.Errorf("quantile: coordinator digest over %d bits, tracker over %d", merged.bits, snap.Bits)
	}
	t.merged = merged
	t.tally = snap.Tally
	t.what = snap.What
	for i, s := range snap.Sites {
		d, err := RestoreQDigest(s.Digest)
		if err != nil {
			return nil, fmt.Errorf("quantile: site %d digest: %w", i, err)
		}
		if d.bits != snap.Bits {
			return nil, fmt.Errorf("quantile: site %d digest over %d bits, tracker over %d", i, d.bits, snap.Bits)
		}
		t.sites[i].digest = d
		t.sites[i].weight = s.Weight
	}
	t.acct.RestoreStats(snap.Stats)
	return t, nil
}

// ShardedTrackerSnapshot is the serializable state of a sharded quantile
// tracker: every shard's full snapshot plus the deal cursor and per-shard
// item tallies, so a restored tracker deals the next block to the same
// shard the saved one would have.
type ShardedTrackerSnapshot struct {
	Shards []TrackerSnapshot
	Next   int
	Items  []int64
}

// SnapshotSharded captures a sharded tracker. It flushes first without
// re-raising shard panics — a poisoned tracker yields an error here, not
// a crashed checkpointer.
func SnapshotSharded(s *Sharded) (ShardedTrackerSnapshot, error) {
	if r := s.FlushErr(); r != nil {
		return ShardedTrackerSnapshot{}, fmt.Errorf("quantile: sharded tracker failed during ingest: %v", r)
	}
	shards := make([]TrackerSnapshot, s.ShardCount())
	for i := range shards {
		shards[i] = s.Shard(i).Snapshot()
	}
	return ShardedTrackerSnapshot{Shards: shards, Next: s.st.DealCursor(), Items: s.ShardItems()}, nil
}

// RestoreSharded rebuilds a sharded tracker from a snapshot, rejecting
// cross-shard parameter disagreement with a wrapped ErrMergeMismatch — the
// merge boundary returns errors rather than letting a corrupted snapshot
// panic the first query.
func RestoreSharded(snap ShardedTrackerSnapshot) (*Sharded, error) {
	if err := core.CheckShards(len(snap.Shards)); err != nil {
		return nil, fmt.Errorf("quantile: sharded snapshot: %w", err)
	}
	trackers := make([]*Tracker, len(snap.Shards))
	for i, ts := range snap.Shards {
		if ts.M != snap.Shards[0].M || ts.Eps != snap.Shards[0].Eps || ts.Bits != snap.Shards[0].Bits {
			return nil, fmt.Errorf("quantile: sharded snapshot shard %d has (m=%d, eps=%v, bits=%d), shard 0 has (m=%d, eps=%v, bits=%d): %w",
				i, ts.M, ts.Eps, ts.Bits, snap.Shards[0].M, snap.Shards[0].Eps, snap.Shards[0].Bits, ErrMergeMismatch)
		}
		t, err := RestoreTracker(ts)
		if err != nil {
			return nil, fmt.Errorf("quantile: sharded snapshot shard %d: %w", i, err)
		}
		trackers[i] = t
	}
	s := newShardedFromTrackers(snap.Shards[0].M, trackers)
	if err := s.st.RestoreDeal(snap.Next, snap.Items); err != nil {
		s.Close()
		return nil, fmt.Errorf("quantile: %w", err)
	}
	return s, nil
}
