package wal

import (
	"errors"
	"testing"

	"repro/internal/vfs"
)

// replayFrom collects the suffix ReplayFrom delivers.
func replayFrom(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var got []Record
	if err := l.ReplayFrom(after, func(rec *Record) error {
		got = append(got, ownedRecord(rec))
		return nil
	}); err != nil {
		t.Fatalf("ReplayFrom(%d): %v", after, err)
	}
	return got
}

func TestReplayFromSuffixes(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the log spans several closed segments plus an
	// active one, and per-record WaitDurable so each record flushes.
	l, _ := collectOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	want := testRecords(40)
	for i := range want {
		lsn, err := l.Append(&want[i])
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want[i].LSN = lsn
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("test wants several segments, got %d", l.Stats().Segments)
	}
	// Every cursor position yields exactly the records beyond it.
	last := want[len(want)-1].LSN
	for after := uint64(0); after <= last; after++ {
		got := replayFrom(t, l, after)
		if !equalRecords(got, want[after:]) {
			t.Fatalf("ReplayFrom(%d): %d records, want %d", after, len(got), len(want)-int(after))
		}
	}
	if got := replayFrom(t, l, last+10); len(got) != 0 {
		t.Fatalf("ReplayFrom past the end replayed %d records", len(got))
	}
}

func TestReplayFromAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	want := testRecords(40)
	for i := range want {
		lsn, err := l.Append(&want[i])
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want[i].LSN = lsn
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
	}
	// Compact away segments fully covered below the midpoint; cursors at
	// or past the midpoint must still see their exact suffix.
	mid := want[len(want)/2].LSN
	if _, err := l.Compact(mid); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for after := mid; after <= want[len(want)-1].LSN; after++ {
		got := replayFrom(t, l, after)
		if !equalRecords(got, want[after:]) {
			t.Fatalf("post-compaction ReplayFrom(%d): %d records, want %d",
				after, len(got), len(want)-int(after))
		}
	}
}

func TestReplayFromIncludesStagedTail(t *testing.T) {
	dir := t.TempDir()
	// A huge flush interval keeps appends staged in memory; ReplayFrom
	// must still deliver them — they are applied state awaiting group
	// commit.
	l, _ := collectOpen(t, Options{Dir: dir, FlushInterval: 3600e9})
	defer l.Close()
	want := testRecords(6)
	for i := range want {
		lsn, err := l.Append(&want[i])
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want[i].LSN = lsn
	}
	got := replayFrom(t, l, 0)
	if !equalRecords(got, want) {
		t.Fatalf("staged replay: %d records, want %d", len(got), len(want))
	}
	if got := replayFrom(t, l, 4); !equalRecords(got, want[4:]) {
		t.Fatalf("staged suffix replay: %d records, want %d", len(got), len(want)-4)
	}
}

func TestReplayFromSkipsStagedTailWhenDamaged(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFault(vfs.OS())
	l, _ := collectOpen(t, Options{Dir: dir, FS: fault})
	defer l.Close()
	durable := appendAll(t, l, testRecords(5))

	boom := errors.New("injected fsync failure")
	fault.FailOp(vfs.OpSync, boom)
	rec := Record{Kind: KindDelete, Tracker: "x"}
	lsn, err := l.Append(&rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(lsn); err == nil {
		t.Fatal("WaitDurable succeeded with fsync failing")
	}
	// Damaged: the unacknowledged staged record is Rearm debris and must
	// not replay, but the durable prefix must.
	got := replayFrom(t, l, 0)
	if !equalRecords(got, durable) {
		t.Fatalf("damaged replay: %d records, want %d durable", len(got), len(durable))
	}
}

func TestReplayFromCallbackErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir})
	defer l.Close()
	appendAll(t, l, testRecords(5))
	boom := errors.New("apply rejected")
	err := l.ReplayFrom(0, func(rec *Record) error {
		if rec.LSN == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ReplayFrom = %v, want wrapped %v", err, boom)
	}
}

func TestReplayFromClosed(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir})
	appendAll(t, l, testRecords(3))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.ReplayFrom(0, func(*Record) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReplayFrom on closed log = %v, want ErrClosed", err)
	}
}
