package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// segPrefix/segSuffix frame segment filenames: wal-%020d.seg, the
// zero-padded first LSN the segment may contain.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func (l *Log) segmentPath(start uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix))
}

// parseSegmentName extracts the start LSN from a segment filename.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(digits) != 20 {
		return 0, false
	}
	start, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return start, true
}

// recover scans the log directory, truncates a torn tail, replays intact
// records through fn, and leaves the log positioned to append. Called
// from Open before any concurrency exists, so it touches fields without
// holding mu.
//
//distlint:caller-holds mu
func (l *Log) recover(fn func(*Record) error) error {
	entries, err := l.fs.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", l.opts.Dir, err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		start, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{start: start, path: filepath.Join(l.opts.Dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	if len(segs) == 0 {
		// Fresh log: LSN 0 means "none", assignment starts at 1.
		l.nextLSN = 1
		return l.createSegment(1)
	}

	var (
		rd      recordReader
		lastLSN uint64
	)
	for i, seg := range segs {
		last := i == len(segs)-1
		size, terr, err := l.replaySegment(&rd, seg.path, &lastLSN, fn)
		if err != nil {
			return err
		}
		if terr != nil {
			if !last {
				// The writer rotates only after a clean flush, so a later
				// segment existing past a bad record means this is damage,
				// not a crash artifact.
				return fmt.Errorf("%w: %s: %v", ErrCorrupt, seg.path, terr)
			}
			if err := l.truncateTail(seg.path, size); err != nil {
				return err
			}
			l.torn++
			l.opts.Logf("wal: torn tail: truncated %s to %d bytes (%v)", seg.path, size, terr)
		}
		segs[i].bytes = size
	}

	l.nextLSN = lastLSN + 1
	l.durableLSN = lastLSN
	l.stagedLSN = lastLSN

	tail := segs[len(segs)-1]
	f, err := l.fs.OpenFile(tail.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: opening tail segment: %w", err)
	}
	if _, err := f.Seek(tail.bytes, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: seeking tail segment: %w", err)
	}
	l.seg, l.segPath, l.segStart, l.segDurable = f, tail.path, tail.start, tail.bytes
	l.segments = segs[:len(segs)-1]
	return nil
}

// replaySegment reads one segment and replays its records. It returns
// the byte offset of the first bad record (== file size when the whole
// segment is intact) and, separately, what was wrong with it; the caller
// decides whether that is a torn tail or corruption. A replay-callback
// error aborts immediately.
func (l *Log) replaySegment(rd *recordReader, path string, lastLSN *uint64, fn func(*Record) error) (int64, error, error) {
	data, err := l.readAll(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		rec, next, err := rd.next(data, off)
		if err != nil {
			return int64(off), err, nil
		}
		if rec.LSN <= *lastLSN {
			return int64(off), fmt.Errorf("%w: LSN %d after %d", errMalformed, rec.LSN, *lastLSN), nil
		}
		if err := fn(rec); err != nil {
			return int64(off), nil, fmt.Errorf("wal: replaying LSN %d: %w", rec.LSN, err)
		}
		*lastLSN = rec.LSN
		off = next
	}
	return int64(off), nil, nil
}

// readAll loads a whole segment through the FS seam.
func (l *Log) readAll(path string) ([]byte, error) {
	f, err := vfs.Open(l.fs, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := l.fs.Stat(path)
	if err != nil {
		return nil, err
	}
	data := make([]byte, 0, info.Size())
	buf := make([]byte, 1<<20)
	for {
		n, err := f.Read(buf)
		data = append(data, buf[:n]...)
		if err == io.EOF {
			return data, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// truncateTail cuts a torn tail off a segment and syncs the result.
func (l *Log) truncateTail(path string, size int64) error {
	f, err := l.fs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return nil
}

// createSegment opens the first segment of a fresh log. Only called
// from recover, before the log is shared.
//
//distlint:caller-holds mu
func (l *Log) createSegment(start uint64) error {
	path := l.segmentPath(start)
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.seg, l.segPath, l.segStart, l.segDurable = f, path, start, 0
	return nil
}
