// Package wal is the write-ahead block log under internal/service's
// durability layer: a segmented, append-only log of ingested batches
// (tracker create/delete marks plus row and item blocks) framed with the
// CRC-checked length-prefixed record discipline of internal/wire.
//
// # Write path
//
// Append stages a record and assigns its LSN under the log mutex — call
// it inside the same critical section that applies the batch, so LSN
// order equals apply order. WaitDurable then blocks until an fsync
// covers the LSN: with FlushInterval zero the first waiter becomes the
// flush leader and writes+syncs everything staged (group commit — while
// one fsync is in flight, later appends stage behind it and ride the
// next one); with a positive interval a background ticker flushes, so
// commits batch at that cadence.
//
// # Recovery
//
// Open scans the segments in LSN order and replays every intact record
// through the caller's callback. The first bad record in the final
// segment — short header, bad CRC, malformed payload, or a
// non-increasing LSN — is a torn tail: the file is truncated at the last
// good record and the log continues from there. A bad record in any
// earlier segment cannot be a tear (the writer never wrote past it) and
// fails Open with ErrCorrupt. Records past the last durable flush may
// include batches whose acknowledgements never went out; they replay
// too — the log guarantees acknowledged batches survive, and unacked
// ones are at-least-once.
//
// # Failure and re-arm
//
// A failed write or fsync marks the log damaged: the staged tail is
// discarded (its waiters get the error; nothing was acknowledged) and
// every Append/WaitDurable fails with the same error until Rearm
// truncates the active segment back to its durable length and proves a
// fresh sync. The service layer maps damaged onto its degraded mode and
// drives Rearm from an exponential-backoff retry loop.
//
// # Compaction
//
// A checkpoint that covers every record up to LSN k makes those records
// dead weight; Compact(k) deletes the closed segments that hold only
// LSNs ≤ k. The active segment is never deleted.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/vfs"
)

// Log errors, matched with errors.Is.
var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: closed")

	// ErrCorrupt reports a bad record before the log's tail — real
	// corruption, not a crash artifact, so Open refuses to guess.
	ErrCorrupt = errors.New("wal: corrupt record before log tail")
)

// Options configures a Log.
type Options struct {
	// Dir is the segment directory, created if absent.
	Dir string

	// FS is the filesystem seam; nil means the real one.
	FS vfs.FS

	// SegmentBytes is the rotation threshold (default 16 MiB): a flush
	// that leaves the active segment at or beyond it opens a new segment.
	SegmentBytes int64

	// FlushInterval selects the group-commit cadence: zero (default)
	// means leader-driven — the first WaitDurable caller flushes
	// immediately and concurrent callers ride the same fsync; a positive
	// interval means a background ticker flushes at that period and
	// waiters block until their record's flush lands.
	FlushInterval time.Duration

	// Logf, when set, receives operational log lines (torn-tail
	// truncations, re-arms).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.OS()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// segmentInfo is one closed (no longer written) segment.
type segmentInfo struct {
	start uint64 // first LSN the segment may contain
	path  string
	bytes int64
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	LSN        uint64 `json:"lsn"`         // highest assigned LSN
	DurableLSN uint64 `json:"durable_lsn"` // highest fsync-covered LSN
	Segments   int    `json:"segments"`    // segment files, active included
	Bytes      int64  `json:"bytes"`       // durable bytes across segments

	Appends           int64 `json:"appends"`
	Flushes           int64 `json:"flushes"`
	Rotations         int64 `json:"rotations"`
	SegmentsCompacted int64 `json:"segments_compacted"`
	TornTruncations   int64 `json:"torn_truncations"`

	Damaged string `json:"damaged,omitempty"` // sticky failure, "" when armed
}

// Log is a segmented write-ahead log. Safe for concurrent use.
type Log struct {
	opts Options
	fs   vfs.FS

	mu   sync.Mutex
	cond *sync.Cond // broadcast on flush completion, damage, re-arm, close

	buf   []byte //distlint:guarded-by mu
	spare []byte //distlint:guarded-by mu

	//distlint:guarded-by mu
	nextLSN uint64 // next LSN Append assigns
	//distlint:guarded-by mu
	stagedLSN uint64 // highest staged LSN
	//distlint:guarded-by mu
	durableLSN uint64 // highest fsync-covered LSN

	seg        vfs.File //distlint:guarded-by mu
	segPath    string   //distlint:guarded-by mu
	segStart   uint64   //distlint:guarded-by mu
	segDurable int64    //distlint:guarded-by mu

	segments []segmentInfo //distlint:guarded-by mu

	flushing bool  //distlint:guarded-by mu
	damaged  error //distlint:guarded-by mu
	closed   bool  //distlint:guarded-by mu

	//distlint:guarded-by mu
	appends, flushes, rotations, compacted, torn int64

	stopFlush chan struct{}
	flushWG   sync.WaitGroup
}

// Open scans the log directory, truncates any torn tail, replays every
// intact record through fn in LSN order, and returns the log positioned
// to append. Records handed to fn borrow scratch buffers valid only
// during the call. A non-nil error from fn aborts Open.
func Open(opts Options, fn func(*Record) error) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{opts: opts, fs: opts.FS}
	l.cond = sync.NewCond(&l.mu)
	if err := l.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	if err := l.recover(fn); err != nil {
		return nil, err
	}
	if opts.FlushInterval > 0 {
		l.stopFlush = make(chan struct{})
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// Append stages one record, assigning and returning its LSN. The record
// is durable only once WaitDurable(lsn) returns nil. Call Append inside
// the critical section that applies the batch so LSN order matches
// apply order; WaitDurable belongs outside it.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.damaged != nil {
		return 0, l.damaged
	}
	rec.LSN = l.nextLSN
	buf, err := appendRecord(l.buf, rec)
	if err != nil {
		return 0, err // encoding rejected: nothing staged, LSN not consumed
	}
	l.buf = buf
	l.nextLSN++
	l.stagedLSN = rec.LSN
	l.appends++
	return rec.LSN, nil
}

// WaitDurable blocks until an fsync covers lsn. In leader-driven mode
// the caller may perform the flush itself; concurrent waiters share one
// fsync (group commit).
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.durableLSN >= lsn {
			return nil
		}
		if l.damaged != nil {
			return l.damaged
		}
		if l.closed {
			return ErrClosed
		}
		if l.flushing || l.opts.FlushInterval > 0 {
			l.cond.Wait()
			continue
		}
		l.flushLocked()
	}
}

// Sync flushes everything staged and blocks until it is durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	staged := l.stagedLSN
	l.mu.Unlock()
	if staged == 0 {
		return nil
	}
	// In interval mode a caller-forced sync still flushes directly rather
	// than waiting a full tick.
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.durableLSN >= staged {
			return nil
		}
		if l.damaged != nil {
			return l.damaged
		}
		if l.closed {
			return ErrClosed
		}
		if l.flushing {
			l.cond.Wait()
			continue
		}
		l.flushLocked()
	}
}

// flushLocked writes and fsyncs everything staged. Called with mu held
// and flushing false; it releases mu for the file I/O and re-acquires it
// before returning. A failure marks the log damaged and discards the
// staged tail — its waiters observe the error, and Rearm truncates the
// file back to the durable boundary.
func (l *Log) flushLocked() {
	l.flushing = true
	buf := l.buf
	staged := l.stagedLSN
	if l.spare != nil {
		l.buf = l.spare[:0]
		l.spare = nil
	} else {
		l.buf = nil
	}
	seg := l.seg
	l.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = seg.Write(buf)
	}
	if err == nil {
		err = seg.Sync()
	}

	l.mu.Lock()
	l.flushing = false
	l.flushes++
	if err != nil {
		l.damaged = fmt.Errorf("wal: flush: %w", err)
		// The staged bytes in buf (and anything staged since) may be
		// partially on disk without a covering sync; none of it was
		// acknowledged. Rearm discards the staged tail and truncates the
		// segment back to segDurable.
	} else {
		l.segDurable += int64(len(buf))
		l.durableLSN = staged
		l.spare = buf[:0]
		if l.segDurable >= l.opts.SegmentBytes && len(l.buf) == 0 && !l.closed {
			l.rotateLocked()
		}
	}
	l.cond.Broadcast()
}

// rotateLocked closes the active segment and opens a fresh one named by
// the next LSN to be assigned. Called with mu held, with nothing staged.
func (l *Log) rotateLocked() {
	path := l.segmentPath(l.nextLSN)
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		l.damaged = fmt.Errorf("wal: rotating: %w", err)
		return
	}
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		_ = l.fs.Remove(path)
		l.damaged = fmt.Errorf("wal: rotating: %w", err)
		return
	}
	l.seg.Close()
	l.segments = append(l.segments, segmentInfo{start: l.segStart, path: l.segPath, bytes: l.segDurable})
	l.seg, l.segPath, l.segStart, l.segDurable = f, path, l.nextLSN, 0
	l.rotations++
}

// Rearm clears a damaged log: it discards the staged (never
// acknowledged) tail, reopens the active segment, truncates it back to
// its durable length, and proves a sync. Returns nil when the log is
// healthy again; the caller retries later otherwise.
func (l *Log) Rearm() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	if l.damaged == nil {
		return nil
	}
	l.buf = l.buf[:0]
	l.stagedLSN = l.durableLSN
	if l.seg != nil {
		l.seg.Close()
		l.seg = nil
	}
	f, err := l.fs.OpenFile(l.segPath, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: rearm: %w", err)
	}
	if err := l.rearmSegment(f); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.damaged = nil
	l.opts.Logf("wal: re-armed at LSN %d (%s truncated to %d bytes)", l.durableLSN, l.segPath, l.segDurable)
	l.cond.Broadcast()
	return nil
}

// rearmSegment restores f to the durable prefix: truncate, seek to the
// append position, and a proving sync.
//
//distlint:caller-holds mu
func (l *Log) rearmSegment(f vfs.File) error {
	if err := f.Truncate(l.segDurable); err != nil {
		return fmt.Errorf("wal: rearm truncate: %w", err)
	}
	if _, err := f.Seek(l.segDurable, io.SeekStart); err != nil {
		return fmt.Errorf("wal: rearm seek: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: rearm sync: %w", err)
	}
	return nil
}

// Damaged returns the sticky failure, or nil while the log is armed.
func (l *Log) Damaged() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.damaged
}

// LSN returns the highest assigned LSN (0 before the first Append).
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// DurableLSN returns the highest LSN covered by an fsync.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

// Compact deletes every closed segment whose records are all covered
// (LSN ≤ covered), returning how many were removed. The active segment
// survives regardless.
func (l *Log) Compact(covered uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 0 {
		// Every LSN in segments[0] is below the next segment's start.
		next := l.segStart
		if len(l.segments) > 1 {
			next = l.segments[1].start
		}
		if next > covered+1 {
			break
		}
		if err := l.fs.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: compacting: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
		l.compacted++
	}
	if removed > 0 {
		_ = l.fs.SyncDir(l.opts.Dir)
	}
	return removed, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LSN:        l.nextLSN - 1,
		DurableLSN: l.durableLSN,
		Segments:   len(l.segments) + 1,
		Bytes:      l.segDurable,

		Appends:           l.appends,
		Flushes:           l.flushes,
		Rotations:         l.rotations,
		SegmentsCompacted: l.compacted,
		TornTruncations:   l.torn,
	}
	for _, s := range l.segments {
		st.Bytes += s.bytes
	}
	if l.damaged != nil {
		st.Damaged = l.damaged.Error()
	}
	return st
}

// Close flushes everything staged (when healthy), stops the background
// flusher, and closes the active segment. Returns the sticky damage
// error, if any — staged records behind a damaged log are NOT durable.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.flushing {
		l.cond.Wait()
	}
	if l.damaged == nil && l.durableLSN < l.stagedLSN {
		l.flushLocked()
	}
	err := l.damaged
	l.closed = true
	seg := l.seg
	l.seg = nil
	l.cond.Broadcast()
	l.mu.Unlock()

	if l.stopFlush != nil {
		close(l.stopFlush)
	}
	l.flushWG.Wait()
	if seg != nil {
		if cerr := seg.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// flushLoop is the interval-mode group-commit ticker.
func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.mu.Lock()
			if !l.flushing && !l.closed && l.damaged == nil && l.durableLSN < l.stagedLSN {
				l.flushLocked()
			}
			l.mu.Unlock()
		case <-l.stopFlush:
			return
		}
	}
}
