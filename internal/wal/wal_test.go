package wal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// ownedRecord deep-copies a replayed record out of the reader's scratch.
func ownedRecord(rec *Record) Record {
	cp := *rec
	if rec.Spec != nil {
		cp.Spec = append([]byte(nil), rec.Spec...)
	}
	if rec.Rows != nil {
		cp.Rows = make([][]float64, len(rec.Rows))
		for i, row := range rec.Rows {
			cp.Rows[i] = append([]float64(nil), row...)
		}
	}
	if rec.Items != nil {
		cp.Items = append([]Item(nil), rec.Items...)
	}
	return cp
}

// equalRecords compares record slices, treating nil and empty alike.
func equalRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func collectOpen(t *testing.T, opts Options) (*Log, []Record) {
	t.Helper()
	var got []Record
	l, err := Open(opts, func(rec *Record) error {
		got = append(got, ownedRecord(rec))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, got
}

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := range n {
		switch i % 4 {
		case 0:
			recs = append(recs, Record{
				Kind: KindRows, Tracker: fmt.Sprintf("t%d", i%3), Site: i % 5, Dim: 3,
				Rows: [][]float64{{float64(i), 1.5, -2.25}, {0, math.Pi, float64(i) * 0.5}},
			})
		case 1:
			recs = append(recs, Record{
				Kind: KindItems, Tracker: "hh", Site: AssignSite,
				Items: []Item{{Elem: uint64(i), Weight: 1}, {Elem: 7, Weight: 0.25}},
			})
		case 2:
			recs = append(recs, Record{Kind: KindCreate, Tracker: fmt.Sprintf("t%d", i%3), Spec: []byte(`{"kind":"fd"}`)})
		default:
			recs = append(recs, Record{Kind: KindDelete, Tracker: "hh"})
		}
	}
	return recs
}

// appendAll appends recs, waits for durability, and returns the records
// with their assigned LSNs.
func appendAll(t *testing.T, l *Log, recs []Record) []Record {
	t.Helper()
	out := make([]Record, len(recs))
	var last uint64
	for i := range recs {
		rec := recs[i]
		lsn, err := l.Append(&rec)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		rec.LSN = lsn
		out[i] = rec
		last = lsn
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("WaitDurable(%d): %v", last, err)
	}
	return out
}

func TestRecordRoundtrip(t *testing.T) {
	recs := testRecords(12)
	recs = append(recs,
		Record{Kind: KindItems, Tracker: "empty"},         // zero items
		Record{Kind: KindRows, Tracker: "norows", Dim: 2}, // zero rows
		Record{Kind: KindCreate, Tracker: "nospec"},       // empty spec
		Record{Kind: KindRows, Tracker: "assign", Site: AssignSite, Dim: 1, Rows: [][]float64{{math.Inf(1)}}},
	)
	var buf []byte
	for i := range recs {
		recs[i].LSN = uint64(i + 1)
		var err error
		buf, err = appendRecord(buf, &recs[i])
		if err != nil {
			t.Fatalf("appendRecord %d: %v", i, err)
		}
	}
	var rd recordReader
	off := 0
	for i := range recs {
		rec, next, err := rd.next(buf, off)
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		got := ownedRecord(rec)
		want := recs[i]
		// Canonicalise nil vs empty for the comparison.
		if len(want.Rows) == 0 {
			want.Rows, got.Rows = nil, nil
		}
		if len(want.Items) == 0 {
			want.Items, got.Items = nil, nil
		}
		if len(want.Spec) == 0 {
			want.Spec, got.Spec = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestRecordRejectsMalformed(t *testing.T) {
	cases := []Record{
		{Kind: KindInvalid, Tracker: "x"},
		{Kind: KindRows, Tracker: "x", Dim: 0, Rows: [][]float64{{1}}},
		{Kind: KindRows, Tracker: "x", Dim: 2, Rows: [][]float64{{1}}}, // row/dim mismatch
		{Kind: KindRows, Tracker: "x", Dim: 1, Site: -7},
	}
	for i, rec := range cases {
		if _, err := appendRecord(nil, &rec); err == nil {
			t.Errorf("case %d: expected encode error", i)
		}
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, got := collectOpen(t, Options{Dir: dir})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := appendAll(t, l, testRecords(25))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := collectOpen(t, Options{Dir: dir})
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %d records %+v\nwant %d records %+v", len(got), got, len(want), want)
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	// The reopened log continues the LSN sequence.
	more := Record{Kind: KindDelete, Tracker: "x"}
	lsn, err := l2.Append(&more)
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if wantLSN := want[len(want)-1].LSN + 1; lsn != wantLSN {
		t.Fatalf("post-reopen LSN %d, want %d", lsn, wantLSN)
	}
	if err := l2.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir, SegmentBytes: 256})
	// Flush per record so the stream spreads across several segments
	// (one group commit would land everything in the first).
	want := testRecords(60)
	for i := range want {
		lsn, err := l.Append(&want[i])
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotation with 256-byte segments: %+v", st)
	}

	// Nothing covered: nothing compacts.
	if n, err := l.Compact(0); err != nil || n != 0 {
		t.Fatalf("Compact(0) = %d, %v", n, err)
	}
	// Cover half the log: the fully-covered closed segments go.
	mid := want[len(want)/2].LSN
	removedMid, err := l.Compact(mid)
	if err != nil {
		t.Fatalf("Compact(%d): %v", mid, err)
	}
	// Cover everything: every closed segment goes, the active one stays.
	lastLSN := want[len(want)-1].LSN
	removedAll, err := l.Compact(lastLSN)
	if err != nil {
		t.Fatalf("Compact(all): %v", err)
	}
	if removedMid+removedAll != st.Segments-1 {
		t.Fatalf("compacted %d+%d of %d segments", removedMid, removedAll, st.Segments)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("%d segments after full compaction", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: only the tail segment's records replay, and appends resume.
	l2, got := collectOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l2.Close()
	if len(got) >= len(want) {
		t.Fatalf("replayed %d of %d records after compaction", len(got), len(want))
	}
	if !equalRecords(got, want[len(want)-len(got):]) {
		t.Fatalf("post-compaction replay is not a suffix of the original log")
	}
	rec := Record{Kind: KindDelete, Tracker: "x"}
	if lsn, err := l2.Append(&rec); err != nil || lsn != lastLSN+1 {
		t.Fatalf("Append after compaction = %d, %v; want %d", lsn, err, lastLSN+1)
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir})
	want := appendAll(t, l, testRecords(8))
	seg := l.segPath
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, so a cut maps to its surviving prefix length.
	bounds := []int{0}
	var rd recordReader
	for off := 0; off < len(whole); {
		_, next, err := rd.next(whole, off)
		if err != nil {
			t.Fatalf("segment self-scan: %v", err)
		}
		bounds = append(bounds, next)
		off = next
	}

	for cut := 0; cut <= len(whole); cut++ {
		if err := os.WriteFile(seg, whole[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		l2, got := collectOpen(t, Options{Dir: dir})
		keep := 0
		for keep+1 < len(bounds) && bounds[keep+1] <= cut {
			keep++
		}
		if !equalRecords(got, want[:keep]) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), keep)
		}
		if cut != bounds[keep] {
			if st := l2.Stats(); st.TornTruncations != 1 {
				t.Fatalf("cut %d: %d torn truncations", cut, st.TornTruncations)
			}
		}
		// The truncated log accepts appends at the right LSN.
		rec := Record{Kind: KindDelete, Tracker: "x"}
		if lsn, err := l2.Append(&rec); err != nil || lsn != uint64(keep+1) {
			t.Fatalf("cut %d: Append = %d, %v; want LSN %d", cut, lsn, err, keep+1)
		}
		if err := l2.WaitDurable(uint64(keep + 1)); err != nil {
			t.Fatalf("cut %d: WaitDurable: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
	}
}

func TestBitFlipTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir})
	want := appendAll(t, l, testRecords(6))
	seg := l.segPath
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the 4th record: records 1–3 survive, the rest
	// are cut.
	bounds := []int{0}
	var rd recordReader
	for off := 0; off < len(whole); {
		_, next, err := rd.next(whole, off)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, next)
		off = next
	}
	mut := append([]byte(nil), whole...)
	mut[bounds[3]+headerSize] ^= 0x10
	if err := os.WriteFile(seg, mut, 0o600); err != nil {
		t.Fatal(err)
	}
	l2, got := collectOpen(t, Options{Dir: dir})
	defer l2.Close()
	if !reflect.DeepEqual(got, want[:3]) {
		t.Fatalf("replayed %d records after bit flip, want 3", len(got))
	}
	if st := l2.Stats(); st.TornTruncations != 1 {
		t.Fatalf("torn truncations = %d", st.TornTruncations)
	}
}

func TestEarlySegmentCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir, SegmentBytes: 256})
	appendAll(t, l, testRecords(60))
	if len(l.segments) == 0 {
		t.Fatal("test needs at least one closed segment")
	}
	first := l.segments[0].path
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(first, data, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Options{Dir: dir, SegmentBytes: 256}, func(*Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range per {
				rec := Record{Kind: KindItems, Tracker: "hh",
					Items: []Item{{Elem: uint64(w*per + i), Weight: 1}}}
				lsn, err := l.Append(&rec)
				if err == nil {
					err = l.WaitDurable(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	st := l.Stats()
	if st.Appends != workers*per {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Flushes >= st.Appends {
		t.Fatalf("no group commit: %d flushes for %d appends", st.Flushes, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, got := collectOpen(t, Options{Dir: dir})
	defer l2.Close()
	if len(got) != workers*per {
		t.Fatalf("replayed %d of %d records", len(got), workers*per)
	}
}

func TestFlushIntervalMode(t *testing.T) {
	dir := t.TempDir()
	l, _ := collectOpen(t, Options{Dir: dir, FlushInterval: 1e6 /* 1ms */})
	want := appendAll(t, l, testRecords(10))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, got := collectOpen(t, Options{Dir: dir})
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interval-mode replay mismatch: %d vs %d records", len(got), len(want))
	}
}

func TestDamageAndRearm(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFault(vfs.OS())
	l, _ := collectOpen(t, Options{Dir: dir, FS: fault})
	durable := appendAll(t, l, testRecords(5))

	boom := errors.New("injected fsync failure")
	fault.FailOp(vfs.OpSync, boom)
	rec := Record{Kind: KindDelete, Tracker: "x"}
	lsn, err := l.Append(&rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(lsn); !errors.Is(err, boom) {
		t.Fatalf("WaitDurable under failure = %v, want %v", err, boom)
	}
	if l.Damaged() == nil {
		t.Fatal("log not damaged after failed flush")
	}
	if _, err := l.Append(&Record{Kind: KindDelete, Tracker: "y"}); !errors.Is(err, boom) {
		t.Fatalf("Append on damaged log = %v", err)
	}
	// Disk still dead: Rearm fails, log stays damaged.
	if err := l.Rearm(); err == nil {
		t.Fatal("Rearm succeeded with fsync still failing")
	}

	fault.ClearOp(vfs.OpSync)
	if err := l.Rearm(); err != nil {
		t.Fatalf("Rearm after heal: %v", err)
	}
	if l.Damaged() != nil {
		t.Fatalf("still damaged after Rearm: %v", l.Damaged())
	}
	post := Record{Kind: KindItems, Tracker: "hh", Items: []Item{{Elem: 1, Weight: 2}}}
	postLSN, err := l.Append(&post)
	if err != nil {
		t.Fatalf("Append after Rearm: %v", err)
	}
	if postLSN <= lsn {
		t.Fatalf("post-rearm LSN %d not beyond damaged LSN %d", postLSN, lsn)
	}
	if err := l.WaitDurable(postLSN); err != nil {
		t.Fatalf("WaitDurable after Rearm: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The replayed log is exactly: the pre-damage durable records plus the
	// post-rearm record. The record staged behind the failed flush is gone.
	l2, got := collectOpen(t, Options{Dir: dir})
	defer l2.Close()
	if len(got) != len(durable)+1 {
		t.Fatalf("replayed %d records, want %d", len(got), len(durable)+1)
	}
	if got[len(got)-1].LSN != postLSN {
		t.Fatalf("last replayed LSN %d, want %d", got[len(got)-1].LSN, postLSN)
	}
}

func TestTempAndForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "wal-abc.seg", "wal-1.seg"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	l, got := collectOpen(t, Options{Dir: dir})
	defer l.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records from foreign files", len(got))
	}
}
