package wal

import (
	"encoding/binary"
	"os"
	"reflect"
	"testing"
)

// fuzzStream derives a deterministic record stream from fuzz bytes.
func fuzzStream(data []byte) []Record {
	var recs []Record
	for len(data) > 0 && len(recs) < 64 {
		b := data[0]
		data = data[1:]
		take := func(n int) []byte {
			if n > len(data) {
				n = len(data)
			}
			chunk := data[:n]
			data = data[n:]
			return chunk
		}
		name := "t" + string(rune('a'+b%3))
		switch b % 4 {
		case 0:
			dim := 1 + int(b/4)%4
			rows := int(b/16) % 4
			rec := Record{Kind: KindRows, Tracker: name, Site: int(b%7) - 1, Dim: dim}
			if rec.Site < -1 {
				rec.Site = AssignSite
			}
			for range rows {
				row := make([]float64, dim)
				for i := range row {
					raw := take(8)
					var v [8]byte
					copy(v[:], raw)
					row[i] = float64(binary.LittleEndian.Uint64(v[:]) % 1000)
				}
				rec.Rows = append(rec.Rows, row)
			}
			recs = append(recs, rec)
		case 1:
			rec := Record{Kind: KindItems, Tracker: name, Site: AssignSite}
			for range int(b/4) % 5 {
				raw := take(8)
				var v [8]byte
				copy(v[:], raw)
				rec.Items = append(rec.Items, Item{Elem: binary.LittleEndian.Uint64(v[:]), Weight: float64(b)})
			}
			recs = append(recs, rec)
		case 2:
			recs = append(recs, Record{Kind: KindCreate, Tracker: name, Spec: take(int(b/4) % 9)})
		default:
			recs = append(recs, Record{Kind: KindDelete, Tracker: name})
		}
	}
	return recs
}

// FuzzWALRecovery writes a record stream to a single-segment log, then
// simulates a crash by truncating the file at an arbitrary byte offset
// or flipping one bit, and asserts recovery always yields a clean prefix
// of the original stream — and that a second recovery is idempotent.
func FuzzWALRecovery(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 251, 252, 253}, uint64(0), false)
	f.Add([]byte{16, 17, 18, 19, 20, 21, 22, 23, 24, 25}, uint64(13), true)
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 99, 98, 97}, uint64(200), false)
	f.Add([]byte{41, 42, 43, 44}, uint64(7), true)

	f.Fuzz(func(t *testing.T, data []byte, pos uint64, flip bool) {
		recs := fuzzStream(data)
		if len(recs) == 0 {
			t.Skip()
		}
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir}, func(*Record) error { return nil })
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		want := make([]Record, len(recs))
		for i := range recs {
			rec := recs[i]
			lsn, err := l.Append(&rec)
			if err != nil {
				t.Fatalf("Append %d: %v", i, err)
			}
			rec.LSN = lsn
			want[i] = rec
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		seg := l.segPath
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Crash damage: a torn tail (truncate) or a flipped bit.
		img, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if flip {
			if len(img) == 0 {
				t.Skip()
			}
			i := int(pos % uint64(len(img)*8))
			img[i/8] ^= 1 << (i % 8)
		} else {
			img = img[:int(pos%uint64(len(img)+1))]
		}
		if err := os.WriteFile(seg, img, 0o600); err != nil {
			t.Fatal(err)
		}

		replayOnce := func() []Record {
			var got []Record
			l, err := Open(Options{Dir: dir}, func(rec *Record) error {
				got = append(got, ownedRecord(rec))
				return nil
			})
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("recovery Close: %v", err)
			}
			return got
		}

		got := replayOnce()
		// Single-bit and truncation damage can never produce a valid novel
		// record (CRC-32 catches all single-bit errors; a truncated payload
		// fails the length check), so recovery must yield an exact prefix.
		if len(got) > len(want) {
			t.Fatalf("recovered %d records from a %d-record log", len(got), len(want))
		}
		canon := func(r Record) Record {
			if len(r.Rows) == 0 {
				r.Rows = nil
			}
			if len(r.Items) == 0 {
				r.Items = nil
			}
			if len(r.Spec) == 0 {
				r.Spec = nil
			}
			return r
		}
		for i := range got {
			if !reflect.DeepEqual(canon(got[i]), canon(want[i])) {
				t.Fatalf("recovered record %d diverges:\n got %+v\nwant %+v", i, got[i], want[i])
			}
		}

		// Recovery is idempotent: the torn tail is gone, so a second open
		// replays the identical prefix with no further truncation.
		again := replayOnce()
		if len(again) != len(got) {
			t.Fatalf("second recovery replayed %d records, first %d", len(again), len(got))
		}
	})
}
