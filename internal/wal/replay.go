package wal

import "fmt"

// ReplayFrom hands every record with LSN > after to fn, in LSN order:
// the per-tracker replay cursor behind service-layer tracker
// hibernation. A tracker faulted back in from its checkpoint replays
// only the log suffix past the checkpoint's WAL coverage, exactly as
// Open would after a restart.
//
// The scan runs under the log mutex — appends and flushes wait for it —
// so the suffix it delivers is a consistent instant of the log. Records
// handed to fn borrow scratch buffers valid only during the call.
// Staged-but-unflushed records replay too: they are applied state
// awaiting group commit, and the caller applying them reproduces the
// live ordering. When the log is damaged the staged tail is skipped —
// Rearm is about to discard it, and nothing in it was acknowledged.
func (l *Log) ReplayFrom(after uint64, fn func(*Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	if l.stagedLSN <= after {
		return nil
	}
	var rd recordReader
	replay := func(data []byte, what string) error {
		off := 0
		for off < len(data) {
			rec, next, err := rd.next(data, off)
			if err != nil {
				return fmt.Errorf("%w: %s at byte %d: %v", ErrCorrupt, what, off, err)
			}
			if rec.LSN > after {
				if ferr := fn(rec); ferr != nil {
					return fmt.Errorf("wal: replaying LSN %d: %w", rec.LSN, ferr)
				}
			}
			off = next
		}
		return nil
	}
	for i, seg := range l.segments {
		// Every LSN in this closed segment is below the next segment's
		// start, so a segment whose successor starts at or before after+1
		// holds nothing to replay.
		next := l.segStart
		if i+1 < len(l.segments) {
			next = l.segments[i+1].start
		}
		if next <= after+1 {
			continue
		}
		data, err := l.readAll(seg.path)
		if err != nil {
			return fmt.Errorf("wal: reading %s: %w", seg.path, err)
		}
		if int64(len(data)) > seg.bytes {
			data = data[:seg.bytes]
		}
		if err := replay(data, seg.path); err != nil {
			return err
		}
	}
	if l.segDurable > 0 && l.durableLSN > after {
		// The active segment's durable prefix; anything past segDurable is
		// a failed flush's debris awaiting Rearm truncation.
		data, err := l.readAll(l.segPath)
		if err != nil {
			return fmt.Errorf("wal: reading %s: %w", l.segPath, err)
		}
		if int64(len(data)) > l.segDurable {
			data = data[:l.segDurable]
		}
		if err := replay(data, l.segPath); err != nil {
			return err
		}
	}
	if l.damaged == nil && len(l.buf) > 0 {
		if err := replay(l.buf, "staged tail"); err != nil {
			return err
		}
	}
	return nil
}
