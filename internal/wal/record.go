package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Record framing follows the wire protocol's discipline (internal/wire):
// a fixed 12-byte header — magic(2) version(1) kind(1) length(4) crc(4),
// all little-endian — followed by the payload. The CRC-32 IEEE covers
// version, kind, length, AND the payload (the magic is a plain sync
// marker), so a single flipped bit anywhere past the magic is always
// caught — a corrupted kind byte can never reinterpret a record. Row
// payloads carry float64 bits verbatim, so a replayed block is
// numerically identical to the ingested one.

// Framing constants.
const (
	// Magic opens every record header ("WL" little-endian).
	Magic uint16 = 0x4C57

	// Version is the record-format version; any other version is
	// corruption, not negotiation.
	Version uint8 = 1

	// headerSize is magic(2) + version(1) + kind(1) + length(4) + crc(4).
	headerSize = 12

	// MaxPayload bounds one record's payload — matches the wire frame
	// bound, comfortably above the service's HTTP body limit.
	MaxPayload = 64 << 20
)

// Kind discriminates log records.
type Kind uint8

// Record kinds.
const (
	// KindInvalid is the zero Kind; never valid in a log.
	KindInvalid Kind = iota

	// KindCreate records a tracker creation: name plus an opaque spec
	// blob the owner replays into a fresh tracker.
	KindCreate

	// KindDelete records a tracker deletion.
	KindDelete

	// KindRows records one ingested batch of float64 matrix rows.
	KindRows

	// KindItems records one ingested batch of weighted items.
	KindItems
)

func (k Kind) String() string {
	switch k {
	case KindCreate:
		return "create"
	case KindDelete:
		return "delete"
	case KindRows:
		return "rows"
	case KindItems:
		return "items"
	default:
		return "invalid"
	}
}

// AssignSite is the Site value recording a batch routed through the
// session's site assigner rather than an explicit site. Replaying the
// batch re-routes it — restored sessions replay assigner draws
// deterministically, so the re-dealt sites match the original run.
const AssignSite = -1

// assignSiteWire is AssignSite's on-disk encoding.
const assignSiteWire = math.MaxUint32

// Item is one weighted stream element (the wire form of the facade's
// WeightedItem, defined here so the log does not import it).
type Item struct {
	Elem   uint64
	Weight float64
}

// Record is one log entry. Kind selects which payload fields are
// meaningful; LSN is assigned by Append and recovered on replay. Records
// handed to a replay callback borrow the reader's scratch buffers: Rows,
// Items, and Spec are valid only during the callback.
type Record struct {
	LSN     uint64
	Kind    Kind
	Tracker string

	// Spec is the opaque tracker-creation blob (KindCreate).
	Spec []byte

	// Site is the explicit origin site, or AssignSite (KindRows, KindItems).
	Site int

	// Dim and Rows carry a row batch (KindRows). Every row has Dim entries.
	Dim  int
	Rows [][]float64

	// Items carries an item batch (KindItems).
	Items []Item
}

// errMalformed reports a structurally invalid record; recovery treats it
// like a bad CRC (torn tail in the final segment, corruption earlier).
var errMalformed = errors.New("wal: malformed record")

// payloadSize computes the record's payload length, validating the
// encodable ranges.
func payloadSize(rec *Record) (int, error) {
	if len(rec.Tracker) > math.MaxUint16 {
		return 0, fmt.Errorf("%w: tracker name of %d bytes", errMalformed, len(rec.Tracker))
	}
	n := 8 + 2 + len(rec.Tracker) // lsn + nameLen + name
	switch rec.Kind {
	case KindCreate:
		n += 4 + len(rec.Spec)
	case KindDelete:
	case KindRows:
		if rec.Dim <= 0 {
			return 0, fmt.Errorf("%w: rows record with dim %d", errMalformed, rec.Dim)
		}
		n += 4 + 4 + 4 + len(rec.Rows)*rec.Dim*8
	case KindItems:
		n += 4 + 4 + len(rec.Items)*16
	default:
		return 0, fmt.Errorf("%w: kind %d", errMalformed, rec.Kind)
	}
	if rec.Site != AssignSite && (rec.Site < 0 || rec.Site >= assignSiteWire) {
		return 0, fmt.Errorf("%w: site %d outside uint32", errMalformed, rec.Site)
	}
	if n > MaxPayload {
		return 0, fmt.Errorf("wal: %v record payload of %d bytes exceeds %d", rec.Kind, n, MaxPayload)
	}
	return n, nil
}

// appendRecord encodes rec (header + payload) onto buf and returns the
// extended buffer.
func appendRecord(buf []byte, rec *Record) ([]byte, error) {
	n, err := payloadSize(rec)
	if err != nil {
		return buf, err
	}
	base := len(buf)
	buf = append(buf, make([]byte, headerSize+n)...)
	p := buf[base+headerSize:]

	binary.LittleEndian.PutUint64(p[0:8], rec.LSN)
	binary.LittleEndian.PutUint16(p[8:10], uint16(len(rec.Tracker)))
	off := 10 + copy(p[10:], rec.Tracker)
	site := uint32(assignSiteWire)
	if rec.Site != AssignSite {
		site = uint32(rec.Site)
	}
	switch rec.Kind {
	case KindCreate:
		binary.LittleEndian.PutUint32(p[off:off+4], uint32(len(rec.Spec)))
		off += 4
		off += copy(p[off:], rec.Spec)
	case KindRows:
		binary.LittleEndian.PutUint32(p[off:off+4], site)
		binary.LittleEndian.PutUint32(p[off+4:off+8], uint32(len(rec.Rows)))
		binary.LittleEndian.PutUint32(p[off+8:off+12], uint32(rec.Dim))
		off += 12
		for _, row := range rec.Rows {
			if len(row) != rec.Dim {
				return buf[:base], fmt.Errorf("%w: row of %d entries in dim-%d record", errMalformed, len(row), rec.Dim)
			}
			for _, v := range row {
				binary.LittleEndian.PutUint64(p[off:off+8], math.Float64bits(v))
				off += 8
			}
		}
	case KindItems:
		binary.LittleEndian.PutUint32(p[off:off+4], site)
		binary.LittleEndian.PutUint32(p[off+4:off+8], uint32(len(rec.Items)))
		off += 8
		for _, it := range rec.Items {
			binary.LittleEndian.PutUint64(p[off:off+8], it.Elem)
			binary.LittleEndian.PutUint64(p[off+8:off+16], math.Float64bits(it.Weight))
			off += 16
		}
	}

	h := buf[base:]
	binary.LittleEndian.PutUint16(h[0:2], Magic)
	h[2] = Version
	h[3] = uint8(rec.Kind)
	binary.LittleEndian.PutUint32(h[4:8], uint32(n))
	binary.LittleEndian.PutUint32(h[8:12], recordCRC(h[2:8], p))
	return buf, nil
}

// recordCRC checksums a record: header bytes past the magic (version,
// kind, length) followed by the payload.
func recordCRC(hdr, payload []byte) uint32 {
	return crc32.Update(crc32.ChecksumIEEE(hdr), crc32.IEEETable, payload)
}

// recordReader decodes records from an in-memory segment image into
// pooled scratch; each decoded Record's slices are valid until the next
// call.
type recordReader struct {
	floats []float64
	rows   [][]float64
	items  []Item
	rec    Record
}

// next decodes the record starting at data[off], returning the record
// and the offset just past it. Any structural failure — short header or
// payload, bad magic/version/kind, CRC mismatch, malformed payload —
// returns an error; the caller decides whether that is a torn tail or
// corruption.
func (r *recordReader) next(data []byte, off int) (*Record, int, error) {
	if len(data)-off < headerSize {
		return nil, off, fmt.Errorf("%w: %d-byte tail", errMalformed, len(data)-off)
	}
	h := data[off : off+headerSize]
	if binary.LittleEndian.Uint16(h[0:2]) != Magic {
		return nil, off, fmt.Errorf("%w: bad magic", errMalformed)
	}
	if h[2] != Version {
		return nil, off, fmt.Errorf("%w: version %d", errMalformed, h[2])
	}
	kind := Kind(h[3])
	n := int(binary.LittleEndian.Uint32(h[4:8]))
	if n > MaxPayload {
		return nil, off, fmt.Errorf("%w: %d-byte payload", errMalformed, n)
	}
	if len(data)-off-headerSize < n {
		return nil, off, fmt.Errorf("%w: truncated payload", errMalformed)
	}
	p := data[off+headerSize : off+headerSize+n]
	if recordCRC(h[2:8], p) != binary.LittleEndian.Uint32(h[8:12]) {
		return nil, off, fmt.Errorf("%w: checksum mismatch", errMalformed)
	}
	if n < 10 {
		return nil, off, fmt.Errorf("%w: %d-byte payload", errMalformed, n)
	}

	r.rec = Record{
		Kind: kind,
		LSN:  binary.LittleEndian.Uint64(p[0:8]),
	}
	nameLen := int(binary.LittleEndian.Uint16(p[8:10]))
	if 10+nameLen > n {
		return nil, off, fmt.Errorf("%w: name length %d", errMalformed, nameLen)
	}
	r.rec.Tracker = string(p[10 : 10+nameLen])
	body := p[10+nameLen:]

	switch kind {
	case KindCreate:
		if len(body) < 4 {
			return nil, off, fmt.Errorf("%w: create body of %d bytes", errMalformed, len(body))
		}
		specLen := int(binary.LittleEndian.Uint32(body[0:4]))
		if len(body) != 4+specLen {
			return nil, off, fmt.Errorf("%w: spec length %d in %d-byte body", errMalformed, specLen, len(body))
		}
		r.rec.Spec = body[4:]
	case KindDelete:
		if len(body) != 0 {
			return nil, off, fmt.Errorf("%w: delete body of %d bytes", errMalformed, len(body))
		}
	case KindRows:
		if len(body) < 12 {
			return nil, off, fmt.Errorf("%w: rows body of %d bytes", errMalformed, len(body))
		}
		rows := int(binary.LittleEndian.Uint32(body[4:8]))
		dim := int(binary.LittleEndian.Uint32(body[8:12]))
		if dim <= 0 || rows < 0 || len(body) != 12+rows*dim*8 {
			return nil, off, fmt.Errorf("%w: rows %d×%d in %d-byte body", errMalformed, rows, dim, len(body))
		}
		r.rec.Site = decodeSite(binary.LittleEndian.Uint32(body[0:4]))
		r.rec.Dim = dim
		total := rows * dim
		if cap(r.floats) < total {
			r.floats = make([]float64, total)
		}
		flat := r.floats[:total]
		bo := 12
		for i := range flat {
			flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[bo : bo+8]))
			bo += 8
		}
		if cap(r.rows) < rows {
			r.rows = make([][]float64, rows)
		}
		hdrs := r.rows[:rows]
		for i := range hdrs {
			hdrs[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
		}
		r.rec.Rows = hdrs
	case KindItems:
		if len(body) < 8 {
			return nil, off, fmt.Errorf("%w: items body of %d bytes", errMalformed, len(body))
		}
		count := int(binary.LittleEndian.Uint32(body[4:8]))
		if count < 0 || len(body) != 8+count*16 {
			return nil, off, fmt.Errorf("%w: %d items in %d-byte body", errMalformed, count, len(body))
		}
		r.rec.Site = decodeSite(binary.LittleEndian.Uint32(body[0:4]))
		if cap(r.items) < count {
			r.items = make([]Item, count)
		}
		items := r.items[:count]
		bo := 8
		for i := range items {
			items[i] = Item{
				Elem:   binary.LittleEndian.Uint64(body[bo : bo+8]),
				Weight: math.Float64frombits(binary.LittleEndian.Uint64(body[bo+8 : bo+16])),
			}
			bo += 16
		}
		r.rec.Items = items
	default:
		return nil, off, fmt.Errorf("%w: kind %d", errMalformed, uint8(kind))
	}
	return &r.rec, off + headerSize + n, nil
}

func decodeSite(v uint32) int {
	if v == assignSiteWire {
		return AssignSite
	}
	return int(v)
}
