package distmat

import (
	"errors"
	"fmt"
	"testing"
)

// TestInvalidConfigPreservesWrappedChain: invalidConfig must wrap the
// detail error with %w, not flatten it with %s, so callers can still match
// the underlying cause with errors.Is/As through the ErrInvalidConfig
// wrapper. Regression test for the distlint errcontract finding.
func TestInvalidConfigPreservesWrappedChain(t *testing.T) {
	inner := errors.New("inner cause")
	detail := fmt.Errorf("validating sites: %w", inner)
	err := invalidConfig(detail)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("invalidConfig result does not match ErrInvalidConfig: %v", err)
	}
	if !errors.Is(err, inner) {
		t.Errorf("invalidConfig flattened the detail error; errors.Is lost the inner cause: %v", err)
	}
}

// TestInvalidConfigfMessage pins the formatted variant's rendering, which
// shares the sentinel wrap but has no inner error to preserve.
func TestInvalidConfigfMessage(t *testing.T) {
	err := invalidConfigf("need m ≥ %d", 1)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("invalidConfigf result does not match ErrInvalidConfig: %v", err)
	}
	if want := ErrInvalidConfig.Error() + ": need m ≥ 1"; err.Error() != want {
		t.Errorf("invalidConfigf message = %q, want %q", err.Error(), want)
	}
}
