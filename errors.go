package distmat

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the public API. Match them with errors.Is;
// the wrapped message carries the offending parameter and value.
var (
	// ErrInvalidConfig reports a Config that fails validation (site count,
	// ε range, row dimension, copies, window, or quantile universe).
	ErrInvalidConfig = errors.New("distmat: invalid config")

	// ErrUnknownProtocol reports a protocol name absent from the registry.
	// The message lists the registered names.
	ErrUnknownProtocol = errors.New("distmat: unknown protocol")

	// ErrWrongKind reports an operation that does not apply to a session's
	// kind (e.g. ProcessRows on a heavy-hitters session).
	ErrWrongKind = errors.New("distmat: operation does not apply to this session kind")

	// ErrDimensionMismatch reports a row whose length differs from the
	// session's configured dimension d.
	ErrDimensionMismatch = errors.New("distmat: row dimension mismatch")

	// ErrInvalidItem reports a stream item a session cannot ingest: a
	// non-positive weight, or a quantile value outside [0, 2^Bits).
	ErrInvalidItem = errors.New("distmat: invalid stream item")

	// ErrInvalidQuery reports an out-of-range query parameter, e.g. a
	// heavy-hitter threshold or quantile rank outside its domain.
	ErrInvalidQuery = errors.New("distmat: invalid query")

	// ErrInvalidSite reports an explicit site index outside [0, Sites).
	ErrInvalidSite = errors.New("distmat: site out of range")

	// ErrSessionClosed reports ingestion on a session after Close. Closed
	// sessions still answer queries; only ingestion is rejected.
	ErrSessionClosed = errors.New("distmat: session is closed")

	// ErrNotShardable reports a configuration that cannot run sharded
	// (Config.Shards > 1). Only windowed matrix sessions remain
	// unshardable: sub-window boundaries are counted per shard, so
	// sharding would break the coverage guarantee. Matrix sessions shard
	// through merge-on-query Gram addition; heavy-hitters and quantile
	// sessions through merge-on-query summary accumulation (their
	// per-shard εW_k bounds sum to εW).
	ErrNotShardable = errors.New("distmat: configuration is not shardable")

	// ErrNotPersistable reports a session whose state cannot be saved:
	// the underlying tracker is randomized or windowed (RNG and window
	// phase cannot be re-seeded mid-stream), wrapped around a custom
	// implementation, or bound to a custom Assigner. SaveState documents
	// which registered protocols are persistable.
	ErrNotPersistable = errors.New("distmat: session is not persistable")
)

// invalidConfig wraps a detailed validation failure in ErrInvalidConfig.
func invalidConfig(detail error) error {
	return fmt.Errorf("%w: %w", ErrInvalidConfig, detail)
}

// invalidConfigf wraps a formatted validation failure in ErrInvalidConfig.
func invalidConfigf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
}

// notShardablef wraps a formatted explanation in ErrNotShardable.
func notShardablef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNotShardable, fmt.Sprintf(format, args...))
}

// unknownProtocol builds an ErrUnknownProtocol listing the registered names.
func unknownProtocol(kind, name string, known []string) error {
	return fmt.Errorf("%w: %s protocol %q (registered: %v)", ErrUnknownProtocol, kind, name, known)
}
