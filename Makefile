# Developer entry points. CI runs the same steps (see .github/workflows).

GO ?= go

.PHONY: build test race bench bench-compare perf-guard experiments fmt vet lint lint-findings e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reproducible perf artifact: rows/sec and messages-per-update for the
# headline protocols, at quick scale by default. Override the scale with
# BENCH_FLAGS (e.g. BENCH_FLAGS="" for the paper-scale streams).
BENCH_FLAGS ?= -quick
bench:
	$(GO) run ./cmd/experiments $(BENCH_FLAGS) -bench-json BENCH_ingest.json
	@cat BENCH_ingest.json

# benchstat-style old-vs-new comparison: regenerate into a scratch file and
# diff it against the committed artifact, promoting the new numbers only
# when the comparison passes — a -fail-over failure leaves the committed
# baseline untouched (and BENCH_ingest.new.json behind for inspection).
# COMPARE_FLAGS="-fail-over 20" makes a >20% rows/sec regression fail.
COMPARE_FLAGS ?=
bench-compare:
	$(GO) run ./cmd/experiments $(BENCH_FLAGS) -bench-json BENCH_ingest.new.json
	$(GO) run ./cmd/benchcompare $(COMPARE_FLAGS) BENCH_ingest.json BENCH_ingest.new.json
	@mv BENCH_ingest.new.json BENCH_ingest.json

# The in-tree perf floors: the ≥5× fast-ingest speedup guard, the exact-mode
# batch never-slower guard, the FD blocked-ingest guard, the steady-state
# zero-allocation assertions, the ≥2× sharded scaling floor at 4 workers,
# and the shared-ingestion-pool never-slower floor (pool at 4 workers ≥
# 0.5× a 16-lane pool). The scaling guards need ≥4 procs and skip —
# loudly — on smaller machines. CI runs exactly this target.
perf-guard:
	$(GO) test -run 'TestFastIngestSpeedupGuard|TestBatchDispatchNeverSlower|TestFastSiteHotPathAllocs|TestFastSiteSteadyStateAllocs|TestBlockedFDSpeedupGuard|TestShardedSpeedupGuard|TestShardedItemSpeedupGuard|TestPoolNoSlowerGuard' -v -count=1 ./internal/core ./internal/node ./internal/sketch ./internal/hh ./internal/service

# Multi-node end-to-end smoke: distsite streams into distserve over the
# wire protocol on loopback, the coordinator is kill -9'd and restarted
# mid-stream, and the final query must match the site's oracle replay bit
# for bit. CI runs exactly this target.
e2e:
	scripts/e2e_smoke.sh

# Full figure/table regeneration (minutes).
experiments:
	$(GO) run ./cmd/experiments

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Pinned external linters. CI installs exactly these versions; locally the
# steps are skipped (with a notice) when the binaries are absent, so `make
# lint` never needs network access.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# The required lint gate, run by CI on every push: formatting, go vet, the
# project's own distlint analyzers (hot-path allocations, mutex guards,
# snapshot purity, error contracts, worker lifecycles — see
# internal/analysis), and the pinned external linters when installed.
# distlint type-checks against the build cache, so build first.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/distlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION))"; fi

# Survey mode: print every distlint finding as clickable file:line:col
# lines without failing, for working through a newly annotated package.
lint-findings:
	$(GO) build ./...
	$(GO) run ./cmd/distlint -exit-zero ./...
