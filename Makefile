# Developer entry points. CI runs the same steps (see .github/workflows).

GO ?= go

.PHONY: build test race bench bench-compare perf-guard experiments fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reproducible perf artifact: rows/sec and messages-per-update for the
# headline protocols, at quick scale by default. Override the scale with
# BENCH_FLAGS (e.g. BENCH_FLAGS="" for the paper-scale streams).
BENCH_FLAGS ?= -quick
bench:
	$(GO) run ./cmd/experiments $(BENCH_FLAGS) -bench-json BENCH_ingest.json
	@cat BENCH_ingest.json

# benchstat-style old-vs-new comparison: regenerate into a scratch file and
# diff it against the committed artifact, promoting the new numbers only
# when the comparison passes — a -fail-over failure leaves the committed
# baseline untouched (and BENCH_ingest.new.json behind for inspection).
# COMPARE_FLAGS="-fail-over 20" makes a >20% rows/sec regression fail.
COMPARE_FLAGS ?=
bench-compare:
	$(GO) run ./cmd/experiments $(BENCH_FLAGS) -bench-json BENCH_ingest.new.json
	$(GO) run ./cmd/benchcompare $(COMPARE_FLAGS) BENCH_ingest.json BENCH_ingest.new.json
	@mv BENCH_ingest.new.json BENCH_ingest.json

# The in-tree perf floors: the ≥5× fast-ingest speedup guard, the exact-mode
# batch never-slower guard, the FD blocked-ingest guard, the steady-state
# zero-allocation assertions, and the ≥2× sharded scaling floor at 4 workers
# (needs ≥4 procs; skips — loudly — on smaller machines). CI runs exactly
# this target.
perf-guard:
	$(GO) test -run 'TestFastIngestSpeedupGuard|TestBatchDispatchNeverSlower|TestFastSiteHotPathAllocs|TestFastSiteSteadyStateAllocs|TestBlockedFDSpeedupGuard|TestShardedSpeedupGuard' -v -count=1 ./internal/core ./internal/node ./internal/sketch

# Full figure/table regeneration (minutes).
experiments:
	$(GO) run ./cmd/experiments

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
