# Developer entry points. CI runs the same steps (see .github/workflows).

GO ?= go

.PHONY: build test race bench experiments fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reproducible perf artifact: rows/sec and messages-per-update for the
# headline protocols, at quick scale by default. Override the scale with
# BENCH_FLAGS (e.g. BENCH_FLAGS="" for the paper-scale streams).
BENCH_FLAGS ?= -quick
bench:
	$(GO) run ./cmd/experiments $(BENCH_FLAGS) -bench-json BENCH_ingest.json
	@cat BENCH_ingest.json

# Full figure/table regeneration (minutes).
experiments:
	$(GO) run ./cmd/experiments

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
