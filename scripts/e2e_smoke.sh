#!/usr/bin/env bash
# Multi-node e2e smoke: a distsite daemon streams row blocks into a
# distserve coordinator over the binary wire protocol; the coordinator is
# kill -9'd mid-stream and restarted on the same data directory; the
# stream must finish over the reconnect and the coordinator's final query
# must equal the site's local oracle replay bit for bit. Exercises the
# whole tentpole: framed codec, backpressure window, backoff reconnect,
# checkpointed watermarks, exactly-once resume.
#
# Phase two turns on the durability screws: acked HTTP batches against the
# write-ahead log while a loop hammers explicit checkpoints, then another
# kill -9 (likely mid-checkpoint-write). After restart every acknowledged
# batch must be present (WAL replay), only whole batches may exist (torn
# tail truncated), no orphaned .ckpt-* temp survives the sweep, and
# /metrics must carry a healthy durability section.
#
# Usage: scripts/e2e_smoke.sh  (run from anywhere inside the repo)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046  # pids are newline-separated words
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

HTTP_PORT=$((20000 + RANDOM % 20000))
WIRE_PORT=$((HTTP_PORT + 1))
HTTP="http://127.0.0.1:$HTTP_PORT"
TRACKER=smoke

echo "e2e: building daemons"
(cd "$ROOT" && go build -o "$WORK" ./cmd/distserve ./cmd/distsite)

start_serve() {
  "$WORK/distserve" -addr "127.0.0.1:$HTTP_PORT" -wire "127.0.0.1:$WIRE_PORT" \
    -data "$WORK/data" -checkpoint 200ms >>"$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
}

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$HTTP/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "e2e: coordinator never became healthy" >&2
  cat "$WORK/serve.log" >&2
  return 1
}

echo "e2e: starting coordinator (http :$HTTP_PORT, wire :$WIRE_PORT)"
start_serve
wait_healthy

curl -fsS -X PUT -H 'Content-Type: application/json' \
  -d '{"kind":"matrix","protocol":"p2","sites":4,"epsilon":0.2,"dim":16}' \
  "$HTTP/trackers/$TRACKER" >/dev/null

echo "e2e: streaming 4000 rows (125 blocks, paced)"
"$WORK/distsite" -coord "127.0.0.1:$WIRE_PORT" -http "$HTTP" \
  -tracker "$TRACKER" -site 1 -rows 4000 -block 32 -pace 10ms -seed 7 \
  -oracle >"$WORK/oracle.json" 2>>"$WORK/site.log" &
SITE_PID=$!

# Kill the coordinator mid-stream — hard, no shutdown checkpoint — and
# restart it on the same data directory. The site reconnects with backoff
# and resumes from the restored watermark.
sleep 0.5
echo "e2e: kill -9 coordinator mid-stream, restarting"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
start_serve
wait_healthy

if ! wait "$SITE_PID"; then
  echo "e2e: distsite failed" >&2
  cat "$WORK/site.log" >&2
  exit 1
fi

curl -fsS "$HTTP/trackers/$TRACKER/query" >"$WORK/query.json"
curl -fsS "$HTTP/metrics" >"$WORK/metrics.json"

# The coordinator's answer must match the oracle replay bit for bit, and
# /metrics must carry the wire section with per-update network cost.
cat >"$WORK/check.go" <<'EOF'
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

type doc struct {
	Count     int64    `json:"count"`
	Frobenius *float64 `json:"frobenius"`
	Trace     *float64 `json:"trace"`
}

func read(path string) doc {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	var d doc
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		fmt.Fprintf(os.Stderr, "decoding %s: %v\n", path, err)
		os.Exit(1)
	}
	if d.Frobenius == nil || d.Trace == nil {
		fmt.Fprintf(os.Stderr, "%s is missing frobenius/trace\n", path)
		os.Exit(1)
	}
	return d
}

func main() {
	oracle, query := read(os.Args[1]), read(os.Args[2])
	if oracle.Count != query.Count {
		fmt.Fprintf(os.Stderr, "count: oracle %d, coordinator %d\n", oracle.Count, query.Count)
		os.Exit(1)
	}
	if math.Float64bits(*oracle.Frobenius) != math.Float64bits(*query.Frobenius) {
		fmt.Fprintf(os.Stderr, "frobenius: oracle %v, coordinator %v (not bit-identical)\n", *oracle.Frobenius, *query.Frobenius)
		os.Exit(1)
	}
	if math.Float64bits(*oracle.Trace) != math.Float64bits(*query.Trace) {
		fmt.Fprintf(os.Stderr, "trace: oracle %v, coordinator %v (not bit-identical)\n", *oracle.Trace, *query.Trace)
		os.Exit(1)
	}
	var metrics struct {
		Wire *struct {
			NetRows        int64   `json:"net_rows"`
			BytesPerUpdate float64 `json:"net_bytes_per_update"`
		} `json:"wire"`
	}
	mf, err := os.Open(os.Args[3])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer mf.Close()
	if err := json.NewDecoder(mf).Decode(&metrics); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if metrics.Wire == nil || metrics.Wire.NetRows == 0 || metrics.Wire.BytesPerUpdate <= 0 {
		fmt.Fprintf(os.Stderr, "metrics wire section missing or empty: %+v\n", metrics.Wire)
		os.Exit(1)
	}
	fmt.Printf("e2e: query matches oracle bit for bit (count=%d frobenius=%v); wire net_rows=%d bytes/update=%.1f\n",
		query.Count, *query.Frobenius, metrics.Wire.NetRows, metrics.Wire.BytesPerUpdate)
}
EOF
go run "$WORK/check.go" "$WORK/oracle.json" "$WORK/query.json" "$WORK/metrics.json"

echo "e2e: reconnect evidence:"
grep -E "reconnect|retrans" "$WORK/site.log" | tail -2 || true

# ---- Phase two: WAL durability under kill -9 during checkpoint writes ----

HH=hhsmoke
BATCH_ITEMS=5
curl -fsS -X PUT -H 'Content-Type: application/json' \
  -d '{"kind":"hh","sites":4,"epsilon":0.05,"seed":11}' \
  "$HTTP/trackers/$HH" >/dev/null

# Hammer explicit checkpoints so the kill below lands mid-checkpoint-write
# with high probability (on top of the 200ms periodic loop).
(while :; do
  curl -fsS -X POST "$HTTP/trackers/$HH/checkpoint" >/dev/null 2>&1 || true
done) &
HAMMER_PID=$!

echo "e2e: acked WAL ingestion with checkpoint hammer"
ACKED=0
SENT=0
for i in $(seq 1 200); do
  SENT=$((SENT + 1))
  if curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"site\":$((i % 4)),\"items\":[{\"elem\":$i},{\"elem\":$((i * 7))},{\"elem\":$((i * 13))},{\"elem\":$((i % 97))},{\"elem\":$((i * 31))}]}" \
    "$HTTP/trackers/$HH/items" >/dev/null 2>&1; then
    ACKED=$((ACKED + 1))
  fi
done

echo "e2e: kill -9 coordinator under checkpoint hammer ($ACKED/$SENT batches acked)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
kill "$HAMMER_PID" 2>/dev/null || true
wait "$HAMMER_PID" 2>/dev/null || true

start_serve
wait_healthy

# No orphaned checkpoint temp may survive the Open sweep.
TEMPS=$(find "$WORK/data" -maxdepth 1 -name '.ckpt-*' | wc -l)
if [ "$TEMPS" -ne 0 ]; then
  echo "e2e: $TEMPS orphaned .ckpt-* temp files survived restart" >&2
  ls -la "$WORK/data" >&2
  exit 1
fi

COUNT=$(curl -fsS "$HTTP/trackers/$HH" | sed -n 's/.*"count":\([0-9]*\).*/\1/p')
MIN=$((ACKED * BATCH_ITEMS))
MAX=$((SENT * BATCH_ITEMS))
if [ -z "$COUNT" ] || [ "$COUNT" -lt "$MIN" ] || [ "$COUNT" -gt "$MAX" ]; then
  echo "e2e: recovered count $COUNT outside [$MIN,$MAX] — acked batches lost" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
if [ $((COUNT % BATCH_ITEMS)) -ne 0 ]; then
  echo "e2e: recovered count $COUNT is not a whole number of batches (torn batch applied)" >&2
  exit 1
fi

curl -fsS "$HTTP/metrics" >"$WORK/metrics2.json"
if ! grep -q '"durability"' "$WORK/metrics2.json" || ! grep -q '"wal"' "$WORK/metrics2.json"; then
  echo "e2e: /metrics is missing the durability/wal section" >&2
  exit 1
fi
if grep -q '"degraded":true' "$WORK/metrics2.json"; then
  echo "e2e: coordinator restarted degraded" >&2
  exit 1
fi
echo "e2e: WAL recovery holds (count=$COUNT, acked floor=$MIN); durability metrics healthy"
echo "e2e: PASS"
